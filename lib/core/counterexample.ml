(* Replayable counterexample artifacts; see the interface. *)

module Json = Rcons_runtime.Json
module Schedule = Rcons_runtime.Schedule
module Explore = Rcons_runtime.Explore
module Shrink = Rcons_runtime.Shrink
module Sim = Rcons_runtime.Sim
module Persist = Rcons_runtime.Persist

type workload = {
  type_name : string;
  level : int;
  faithful : bool;
  input_a : int;
  input_b : int;
  persist : Persist.policy;
  annotated : bool;
  flush_cost : int;
  log_slots : int option;
}

let team2 ?(faithful = true) ?(level = 2) ?(inputs = (111, 222)) ?(persist = Persist.Eager)
    ?(annotated = false) ?(flush_cost = 1) type_name =
  {
    type_name;
    level;
    faithful;
    input_a = fst inputs;
    input_b = snd inputs;
    persist;
    annotated;
    flush_cost;
    log_slots = None;
  }

let log ?(faithful = true) ?(level = 2) ?(persist = Persist.Eager) ?(annotated = false)
    ?(flush_cost = 1) ~slots type_name =
  if slots < 1 then invalid_arg "Counterexample.log: slots must be >= 1";
  (* The log derives one proposal per (team, slot), so the team-input
     fields are unused; they keep their defaults for JSON stability. *)
  {
    type_name;
    level;
    faithful;
    input_a = 111;
    input_b = 222;
    persist;
    annotated;
    flush_cost;
    log_slots = Some slots;
  }

(* Non-default persistency parameters are appended as suffixes so the
   canonical string -- and hence the fingerprint binding committed
   artifacts to their workload -- is unchanged for every pre-existing
   (eager) artifact. *)
let persist_suffixes w =
  (match w.persist with
  | Persist.Eager -> ""
  | p -> ":persist=" ^ Persist.policy_to_string p)
  ^ (if w.annotated then ":annotated" else "")
  ^ if w.flush_cost = 1 then "" else Printf.sprintf ":flush-cost=%d" w.flush_cost

let canonical w =
  match w.log_slots with
  | None ->
      Printf.sprintf "team-consensus:%s:level=%d:faithful=%b:inputs=%d,%d%s" w.type_name
        w.level w.faithful w.input_a w.input_b (persist_suffixes w)
  | Some slots ->
      Printf.sprintf "replicated-log:%s:level=%d:faithful=%b:slots=%d%s" w.type_name w.level
        w.faithful slots (persist_suffixes w)

let fingerprint w = Digest.to_hex (Digest.string (canonical w))

(* Interchangeable-process classes of the workload, for the
   symmetry-reducing explorer: the certificate's equal-operation slots
   per team.  Sound here because the workload gives every member of a
   team the same input (one input value per team). *)
let symmetry_classes w =
  match Rcons_spec.Catalogue.of_name w.type_name with
  | Error e -> Error e
  | Ok ot -> (
      match Rcons_check.Recording.witness ot w.level with
      | None ->
          Error
            (Printf.sprintf "%s has no level-%d recording witness"
               (Rcons_spec.Object_type.name ot) w.level)
      | Some cert -> Ok (Rcons_check.Certificate.symmetry_classes cert))

let mk w =
  match Rcons_spec.Catalogue.of_name w.type_name with
  | Error e -> Error e
  | Ok ot -> (
      match Rcons_check.Recording.witness ot w.level with
      | None ->
          Error
            (Printf.sprintf "%s has no level-%d recording witness"
               (Rcons_spec.Object_type.name ot) w.level)
      | Some cert ->
          let size_a, size_b = Rcons_check.Certificate.recording_teams cert in
          let n = size_a + size_b in
          (* Each system gets a fresh cache of the workload's policy
             (lines are per-system state); a pure-eager workload
             explicitly clears the slot so a stale cache from an
             earlier build can never leak in.  [Explore] and
             [Shrink] restore the ambient cache on exit. *)
          let activate_cache () =
            match (w.persist, w.flush_cost) with
            | Persist.Eager, 1 -> Persist.deactivate ()
            | p, fc -> Persist.activate (Persist.create ~flush_cost:fc p)
          in
          Ok
            (match w.log_slots with
            | Some slots ->
                fun () ->
                  activate_cache ();
                  let t, sim =
                    Rcons_log.Rlog.instance ~faithful:w.faithful ~annotated:w.annotated ~slots
                      cert
                  in
                  (sim, fun () -> Rcons_log.Rlog.check_exn ~fail:Explore.fail t)
            | None ->
                fun () ->
                  activate_cache ();
                  let inputs =
                    Array.init n (fun i -> if i < size_a then w.input_a else w.input_b)
                  in
                  let outputs = Rcons_algo.Outputs.make ~inputs in
                  let tc =
                    Rcons_algo.Team_consensus.create ~faithful:w.faithful
                      ~annotated:w.annotated cert
                  in
                  let body pid () =
                    let team, slot =
                      if pid < size_a then (Rcons_spec.Team.A, pid)
                      else (Rcons_spec.Team.B, pid - size_a)
                    in
                    Rcons_algo.Outputs.record outputs pid
                      (tc.Rcons_algo.Team_consensus.decide team slot inputs.(pid))
                  in
                  ( Sim.create ~n body,
                    fun () -> Rcons_algo.Outputs.check_exn ~fail:Explore.fail outputs )))

type t = {
  workload : workload;
  msg : string;
  schedule : Schedule.choice list;
  shrunk_from : int option;
  provenance : Schedule.provenance option;
}

let of_violation w (v : Explore.violation) =
  {
    workload = w;
    msg = v.v_msg;
    schedule = v.v_schedule;
    shrunk_from = None;
    provenance = v.v_provenance;
  }

let minimize ?max_checks t =
  match mk t.workload with
  | Error e -> Error e
  | Ok mk -> (
      match Shrink.minimize ?max_checks ~mk t.schedule with
      | None -> Error "schedule does not violate; nothing to shrink"
      | Some (schedule, msg) ->
          Ok { t with msg; schedule; shrunk_from = Some (List.length t.schedule) })

let replay t =
  (match t.provenance with
  | Some { Schedule.fingerprint = Some fp; _ } when fp <> fingerprint t.workload ->
      invalid_arg
        (Printf.sprintf
           "Counterexample.replay: artifact fingerprint %s does not match workload %s (%s)" fp
           (fingerprint t.workload) (canonical t.workload))
  | _ -> ());
  match mk t.workload with
  | Error e -> invalid_arg ("Counterexample.replay: " ^ e)
  | Ok mk -> (
      match Shrink.check ~mk t.schedule with
      | Some (msg, _) -> `Violated msg
      | None -> `Passed)

let workload_to_json w =
  Json.Obj
    ([
       ( "kind",
         Json.String
           (match w.log_slots with None -> "team-consensus" | Some _ -> "replicated-log") );
       ("type", Json.String w.type_name);
       ("level", Json.Int w.level);
       ("faithful", Json.Bool w.faithful);
       ("input_a", Json.Int w.input_a);
       ("input_b", Json.Int w.input_b);
       ("persist", Json.String (Persist.policy_to_string w.persist));
       ("annotated", Json.Bool w.annotated);
       ("flush_cost", Json.Int w.flush_cost);
     ]
    @ match w.log_slots with None -> [] | Some s -> [ ("slots", Json.Int s) ])

let workload_of_json j =
  let log_slots =
    match Json.member "kind" j with
    | Some (Json.String "team-consensus") -> None
    | Some (Json.String "replicated-log") -> Some (Json.to_int (Json.field "slots" j))
    | _ -> invalid_arg "Counterexample.of_json: unknown workload kind"
  in
  {
    type_name = Json.to_str (Json.field "type" j);
    level = Json.to_int (Json.field "level" j);
    faithful = Json.to_bool (Json.field "faithful" j);
    input_a = Json.to_int (Json.field "input_a" j);
    input_b = Json.to_int (Json.field "input_b" j);
    (* Absent in pre-persistency artifacts: default to the seed model. *)
    persist =
      (match Json.member "persist" j with
      | Some v -> Persist.policy_of_string (Json.to_str v)
      | None -> Persist.Eager);
    annotated = (match Json.member "annotated" j with Some v -> Json.to_bool v | None -> false);
    flush_cost = (match Json.member "flush_cost" j with Some v -> Json.to_int v | None -> 1);
    log_slots;
  }

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("kind", Json.String "counterexample");
      ("workload", workload_to_json t.workload);
      ("msg", Json.String t.msg);
      ("schedule", Schedule.to_json t.schedule);
      ( "shrunk_from",
        match t.shrunk_from with Some n -> Json.Int n | None -> Json.Null );
      ( "provenance",
        match t.provenance with Some p -> Schedule.provenance_to_json p | None -> Json.Null );
    ]

let of_json j =
  (match Json.member "kind" j with
  | Some (Json.String "counterexample") -> ()
  | _ -> invalid_arg "Counterexample.of_json: not a counterexample artifact");
  {
    workload = workload_of_json (Json.field "workload" j);
    msg = Json.to_str (Json.field "msg" j);
    schedule = Schedule.of_json (Json.field "schedule" j);
    shrunk_from =
      (match Json.member "shrunk_from" j with
      | Some Json.Null | None -> None
      | Some v -> Some (Json.to_int v));
    provenance =
      (match Json.member "provenance" j with
      | Some Json.Null | None -> None
      | Some v -> Some (Schedule.provenance_of_json v));
  }

let save ~file t =
  let oc = open_out file in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let load ~file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_json (Json.parse_exn s)
