(** Public facade of the reproduction of "When Is Recoverable Consensus
    Harder Than Consensus?" (Delporte-Gallet, Fatourou, Fauconnier,
    Ruppert; PODC 2022).

    {ul
    {- {!Spec}: deterministic sequential object types and the catalogue
       (registers, TAS, CAS, stack, queue, T_n, S_n, ...).}
    {- {!Check}: decision procedures for the n-discerning (Definition 2)
       and n-recording (Definition 4) properties; cons / rcons bounds
       (Theorems 3, 8, 14); certificates; a brute-force oracle.}
    {- {!Runtime}: the simulated crash-recovery shared-memory system
       (non-volatile heap, schedule drivers, bounded model checker).}
    {- {!Algo}: the paper's algorithms -- Figure 2 team consensus, the
       Appendix B tournament, Figure 4 simultaneous-crash RC, and the
       crash-free Ruppert baseline.}
    {- {!Universal}: RUniversal, the recoverable universal construction
       of Figure 7, with derived recoverable objects.}
    {- {!History}: operation histories and linearizability checking.}
    {- {!Valency}: the Appendix H impossibility analysis
       (rcons(stack) = 1).}
    {- {!Par}: the work-sharing domain pool behind every [?domains]
       knob, with its deterministic-merge contract.}} *)

module Spec = Rcons_spec
module Check = Rcons_check
module Runtime = Rcons_runtime
module Algo = Rcons_algo
module Universal = Rcons_universal
module History = Rcons_history
module Valency = Rcons_valency
module Par = Rcons_par

module Log = Rcons_log
(** The recoverable replicated log ({!Rcons_log.Rlog}): per-slot
    recoverable-consensus instances chained under a quorum-counter
    committed prefix, with crash-recovery replay. *)

module Service = Rcons_service
(** The crash-churn soak service ({!Rcons_service}): many hosted
    instances, client sessions as effect fibers, bounded admission with
    load shedding, retry/timeout/backoff, and online durability
    checking under injected crash churn. *)

module Counterexample = Counterexample
(** Replayable counterexample artifacts: a violating schedule packaged
    with a self-describing workload and provenance, as diffable JSON
    (conventionally under [_counterexamples/]). *)

val classify :
  ?domains:int -> ?limit:int -> ?certs:string -> Spec.Object_type.t -> Check.Classify.report
(** Where does a type sit in the two hierarchies?  Decides the
    n-discerning and n-recording levels up to [limit] (default 8) and
    derives interval bounds on cons(T) and rcons(T).  [domains]
    (default 1) fans each witness search across that many OCaml 5
    domains; [certs] names a {!Check.Cert_cache} directory that persists
    per-level results across runs (entries are revalidated before being
    trusted).  The report is independent of both. *)

val recording_witness :
  ?domains:int -> ?certs:string -> Spec.Object_type.t -> int -> Check.Certificate.recording option
(** The witness search behind {!solve_rc}: {!Check.Recording.witness},
    optionally routed through the persisted certificate cache. *)

val solve_rc :
  ?domains:int -> ?certs:string -> Spec.Object_type.t -> n:int -> (int -> 'v -> 'v) option
(** Build an n-process recoverable-consensus decision function from any
    readable type that is n-recording (Theorem 8 + the tournament of
    Appendix B); [None] when the checker finds no n-recording witness.
    The resulting [decide pid v] must run inside a simulated process
    ({!Runtime.Sim}); it tolerates crashes and recoveries.  [domains]
    parallelizes the witness search; the certificate found -- and hence
    the derived algorithm -- does not depend on it. *)

val make_recoverable :
  ?history:('o, 'r) History.History.t ->
  ?make_rc:(unit -> ('s, 'o, 'r) Universal.Runiversal.node Universal.Runiversal.rc) ->
  n:int ->
  ('s, 'o, 'r) Universal.Runiversal.seq_spec ->
  ('s, 'o, 'r) Universal.Runiversal.t
(** A wait-free recoverable object from any sequential specification,
    via the universal construction of Figure 7. *)

val impossibility :
  ?max_pairs:int -> ?max_depth:int -> ?state_depth:int -> Spec.Object_type.t ->
  Valency.Impossibility.report
(** The Appendix H analysis: does every critical configuration force
    equal valencies (implying rcons = 1)?  For the stack and queue use
    {!Valency.Impossibility.analyse_stack} / [analyse_queue], which
    canonicalize the growing list-state pairs. *)
