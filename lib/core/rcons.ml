(* Public facade of the reproduction of "When Is Recoverable Consensus
   Harder Than Consensus?" (Delporte-Gallet, Fatourou, Fauconnier,
   Ruppert; PODC 2022).

   The sub-libraries are re-exported under short names:

   - {!Spec}: deterministic sequential object types and the catalogue
     (registers, TAS, CAS, stack, queue, T_n, S_n, ...).
   - {!Check}: decision procedures for the n-discerning (Definition 2) and
     n-recording (Definition 4) properties; consensus / recoverable-
     consensus bounds (Theorems 3, 8, 14); certificates.
   - {!Runtime}: the simulated crash-recovery shared-memory system
     (non-volatile heap, schedulers, bounded model checker).
   - {!Algo}: the paper's algorithms -- Figure 2 team consensus, the
     Appendix B tournament, Figure 4 simultaneous-crash RC, baselines.
   - {!Universal}: RUniversal, the recoverable universal construction of
     Figure 7, with derived recoverable objects.
   - {!History}: operation histories and linearizability checking.
   - {!Valency}: the Appendix H impossibility analysis (rcons(stack) = 1).

   The toplevel functions below cover the common workflows. *)

module Spec = Rcons_spec
module Check = Rcons_check
module Runtime = Rcons_runtime
module Algo = Rcons_algo
module Universal = Rcons_universal
module History = Rcons_history
module Valency = Rcons_valency
module Par = Rcons_par

(* Replayable counterexample artifacts (workload + violating schedule +
   provenance), shared by the CLI's replay command, the bench negative
   controls, and CI. *)
module Counterexample = Counterexample

(* Where does a type sit in the two hierarchies?  Decides the n-discerning
   and n-recording levels up to [limit] and derives interval bounds on
   cons(T) and rcons(T).  [domains] fans the underlying witness searches
   across OCaml 5 domains without changing the report. *)
let classify = Check.Classify.classify

(* Build an n-process recoverable-consensus decision function from any
   readable type that is n-recording (Theorem 8 + the tournament of
   Appendix B).  Returns None when the checker finds no n-recording
   witness.  The resulting [decide pid v] must be run inside a simulated
   process (see {!Runtime.Sim}); it tolerates crashes and recoveries. *)
let solve_rc ?domains ot ~n =
  match Check.Recording.witness ?domains ot n with
  | None -> None
  | Some cert -> Some (Algo.Tournament.recoverable_consensus cert ~n)

(* Build a wait-free recoverable object from a sequential specification
   using the universal construction of Figure 7. *)
let make_recoverable ?history ?make_rc ~n spec =
  Universal.Runiversal.create ?history ?make_rc ~n spec

(* The Appendix H analysis: does every critical configuration of the type
   force equal valencies (implying rcons = 1)?  For the stack and the
   queue use {!Valency.Impossibility.analyse_stack} and [analyse_queue]
   instead: they canonicalize the growing list-state pairs, which this
   generic entry point cannot do for an abstract state type. *)
let impossibility = Valency.Impossibility.analyse
