(* Public facade of the reproduction of "When Is Recoverable Consensus
   Harder Than Consensus?" (Delporte-Gallet, Fatourou, Fauconnier,
   Ruppert; PODC 2022).

   The sub-libraries are re-exported under short names:

   - {!Spec}: deterministic sequential object types and the catalogue
     (registers, TAS, CAS, stack, queue, T_n, S_n, ...).
   - {!Check}: decision procedures for the n-discerning (Definition 2) and
     n-recording (Definition 4) properties; consensus / recoverable-
     consensus bounds (Theorems 3, 8, 14); certificates.
   - {!Runtime}: the simulated crash-recovery shared-memory system
     (non-volatile heap, schedulers, bounded model checker).
   - {!Algo}: the paper's algorithms -- Figure 2 team consensus, the
     Appendix B tournament, Figure 4 simultaneous-crash RC, baselines.
   - {!Universal}: RUniversal, the recoverable universal construction of
     Figure 7, with derived recoverable objects.
   - {!History}: operation histories and linearizability checking.
   - {!Valency}: the Appendix H impossibility analysis (rcons(stack) = 1).

   The toplevel functions below cover the common workflows. *)

module Spec = Rcons_spec
module Check = Rcons_check
module Runtime = Rcons_runtime
module Algo = Rcons_algo
module Universal = Rcons_universal
module History = Rcons_history
module Valency = Rcons_valency
module Par = Rcons_par

(* The recoverable replicated log built over per-slot RC instances, with
   its quorum-counter committed prefix (PR 8). *)
module Log = Rcons_log

(* The crash-churn soak service (PR 9): many hosted instances, client
   sessions as effect fibers, bounded admission, retry/backoff, online
   durability checking. *)
module Service = Rcons_service

(* Replayable counterexample artifacts (workload + violating schedule +
   provenance), shared by the CLI's replay command, the bench negative
   controls, and CI. *)
module Counterexample = Counterexample

(* Where does a type sit in the two hierarchies?  Decides the n-discerning
   and n-recording levels up to [limit] and derives interval bounds on
   cons(T) and rcons(T).  [domains] fans the underlying witness searches
   across OCaml 5 domains without changing the report. *)
let classify = Check.Classify.classify

(* The n-recording witness search behind [solve_rc], optionally through
   the persisted certificate cache.  The fingerprint depth [max 8 n]
   matches {!Check.Classify}'s [max 8 limit], so a [classify] run and a
   [solve] run at the same level share cache entries. *)
let recording_witness ?domains ?certs ot n =
  match certs with
  | None -> Check.Recording.witness ?domains ot n
  | Some dir ->
      let go (type s o r)
          (module T : Spec.Object_type.S with type state = s and type op = o and type resp = r) =
        let depth = max 8 n in
        let fp = Spec.Object_type.fingerprint ~depth (module T) in
        let pack d = Check.Certificate.Recording ((module T), d) in
        let module Sc = Check.Recording.Scan (T) in
        match
          Check.Cert_cache.load_recording (module T) ~check:(Some Sc.check) ~dir ~fingerprint:fp
            ~n
        with
        | Check.Cert_cache.Hit d -> Some (pack d)
        | Check.Cert_cache.Negative -> None
        | Check.Cert_cache.Miss ->
            let r = Sc.witness_at ?domains n in
            Check.Cert_cache.store_recording (module T) ~dir ~fingerprint:fp ~depth ~n r;
            Option.map pack r
      in
      (match ot with Spec.Object_type.Pack (module T) -> go (module T))

(* Build an n-process recoverable-consensus decision function from any
   readable type that is n-recording (Theorem 8 + the tournament of
   Appendix B).  Returns None when the checker finds no n-recording
   witness.  The resulting [decide pid v] must be run inside a simulated
   process (see {!Runtime.Sim}); it tolerates crashes and recoveries. *)
let solve_rc ?domains ?certs ot ~n =
  match recording_witness ?domains ?certs ot n with
  | None -> None
  | Some cert -> Some (Algo.Tournament.recoverable_consensus cert ~n)

(* Build a wait-free recoverable object from a sequential specification
   using the universal construction of Figure 7. *)
let make_recoverable ?history ?make_rc ~n spec =
  Universal.Runiversal.create ?history ?make_rc ~n spec

(* The Appendix H analysis: does every critical configuration of the type
   force equal valencies (implying rcons = 1)?  For the stack and the
   queue use {!Valency.Impossibility.analyse_stack} and [analyse_queue]
   instead: they canonicalize the growing list-state pairs, which this
   generic entry point cannot do for an abstract state type. *)
let impossibility = Valency.Impossibility.analyse
