(* A recoverable compare-and-swap object built from an ordinary atomic
   CAS object and registers, in the style of Attiya, Ben-Baruch and
   Hendler's recoverable CAS (cited in Section 5 of the paper: "any
   concurrent algorithm from read/write and CAS objects can become
   recoverable by replacing its CAS objects with their recoverable
   implementation").

   The difficulty is detectability: a process that crashes right after
   its successful CAS must be able to discover, upon recovery, that the
   operation took effect -- even if the installed value has since been
   overwritten.  Two mechanisms provide it:

   - values in the underlying object are tagged with (owner, attempt), so
     a process whose value is still installed recognizes it directly;
   - before overwriting a tagged value, a process first records the
     (owner, attempt) it observed in the owner's evidence row; the
     owner's recovery finds the record even after the value is gone.
     Evidence for an older attempt may be overwritten by evidence for a
     newer one, but a process's attempts are sequential: by the time it
     starts attempt a+1 it has already resolved attempt a.

   Each invocation is identified by a per-process attempt number and is
   idempotent: re-entering [cas] with the same attempt (what a restarted
   process does) returns the recorded outcome without re-executing.

   On interference the operation re-reads and retries while the current
   value still equals [expected] (the tag made the underlying CAS fail
   spuriously); this makes the operation lock-free rather than wait-free,
   as in the original construction. *)

open Rcons_runtime

type 'v tagged = { value : 'v; owner : int; attempt : int }

type 'v phase =
  | Idle
  | Attempt of { attempt : int; expected : 'v; desired : 'v }
  | Done of { attempt : int; result : bool }

type 'v t = {
  n : int;
  equal : 'v -> 'v -> bool;
  c : 'v tagged Cell.t;
  evidence : int option Cell.t array array;
      (* evidence.(q).(p) = Some s: process p observed q's attempt s
         installed in [c] (and was about to overwrite it) *)
  phase : 'v phase Cell.t array;
}

let create ?(equal = ( = )) ~n initial =
  {
    n;
    equal;
    c = Cell.make { value = initial; owner = -1; attempt = 0 };
    evidence = Array.init n (fun _ -> Array.init n (fun _ -> Cell.make None));
    phase = Array.init n (fun _ -> Cell.make Idle);
  }

(* Atomic compare-and-swap on the underlying tagged cell: one step, like
   a hardware CAS. *)
let cas_tagged c ~expected_tag ~desired_tag =
  Sim.step ~fp:(Cell.footprint c Rcons_spec.Footprint.Update) (fun () ->
      if Cell.peek c = expected_tag then begin
        Cell.poke c desired_tag;
        true
      end
      else false)

let read_value t = (Cell.read t.c).value

(* [cas t pid ~attempt ~expected ~desired]: recoverable CAS, idempotent
   per (pid, attempt).  Attempts of one process must be issued with
   increasing numbers. *)
let cas t pid ~attempt ~expected ~desired =
  let finish result =
    Cell.write t.phase.(pid) (Done { attempt; result });
    result
  in
  let rec attempt_loop () =
    let cur = Cell.read t.c in
    if cur.owner = pid && cur.attempt = attempt then finish true
    else if not (t.equal cur.value expected) then finish false
    else begin
      (* record evidence for the current owner before overwriting *)
      if cur.owner >= 0 then Cell.write t.evidence.(cur.owner).(pid) (Some cur.attempt);
      if
        cas_tagged t.c ~expected_tag:cur
          ~desired_tag:{ value = desired; owner = pid; attempt }
      then finish true
      else attempt_loop ()
    end
  in
  match Cell.read t.phase.(pid) with
  | Done { attempt = a; result } when a = attempt -> result (* recovery fast path *)
  | Done _ | Idle ->
      Cell.write t.phase.(pid) (Attempt { attempt; expected; desired });
      attempt_loop ()
  | Attempt { attempt = a; _ } when a <> attempt ->
      Cell.write t.phase.(pid) (Attempt { attempt; expected; desired });
      attempt_loop ()
  | Attempt _ ->
      (* recovery: we crashed mid-attempt; did it already take effect? *)
      let cur = Cell.read t.c in
      if cur.owner = pid && cur.attempt = attempt then finish true
      else begin
        let succeeded = ref false in
        for p = 0 to t.n - 1 do
          if (not !succeeded) && Cell.read t.evidence.(pid).(p) = Some attempt then
            succeeded := true
        done;
        if !succeeded then finish true else attempt_loop ()
      end

(* Detectability (the NRL-style guarantee of Section 4): after a crash,
   what is the status of process [pid]'s attempt [attempt]?  Unlike
   [cas], never re-executes anything. *)
type status = Succeeded | Failed | Unresolved

let recover t pid ~attempt =
  match Cell.read t.phase.(pid) with
  | Done { attempt = a; result } when a = attempt -> if result then Succeeded else Failed
  | Done _ | Idle -> Unresolved
  | Attempt { attempt = a; _ } when a <> attempt -> Unresolved
  | Attempt _ ->
      let cur = Cell.read t.c in
      if cur.owner = pid && cur.attempt = attempt then Succeeded
      else begin
        let succeeded = ref false in
        for p = 0 to t.n - 1 do
          if (not !succeeded) && Cell.read t.evidence.(pid).(p) = Some attempt then
            succeeded := true
        done;
        if !succeeded then Succeeded else Unresolved
      end
