(* Output log for consensus executions.  Every value a process returns is
   appended (a process may output several times across crash/recovery
   cycles -- agreement must hold over all of them).  Recording an output
   is a meta-observation of the simulation, not a shared-memory step. *)

type 'v t = {
  inputs : 'v array;
  outputs : 'v list array;
  mutable slot : Rcons_runtime.Heap.slot option;
}

(* The log is part of the state the explorer's invariants read, so it
   registers with the active Heap arena (if any): two executions only
   share a fingerprint when their output histories agree too.  The array
   is indexed by pid, so a symmetry snapshot relabels it: process i's
   history moves to slot perm.(i). *)
let make ~inputs =
  let t = { inputs; outputs = Array.map (fun _ -> []) inputs; slot = None } in
  t.slot <-
    Rcons_runtime.Heap.register_sym_c (fun perm ->
        match perm with
        | None -> Rcons_runtime.Heap.digest t.outputs
        | Some perm ->
            let a = Array.make (Array.length t.outputs) [] in
            Array.iteri (fun i l -> a.(perm.(i)) <- l) t.outputs;
            Rcons_runtime.Heap.digest a);
  t

(* Recording happens in the process body after its last step, so the
   rollback feed re-runs it: skip the append then (the journal already
   restored the log), journal it otherwise. *)
let record t i v =
  if not (Rcons_runtime.Undo.feeding ()) then begin
    if Rcons_runtime.Undo.recording () then begin
      let old = t.outputs.(i) in
      Rcons_runtime.Undo.log (fun () ->
          t.outputs.(i) <- old;
          Rcons_runtime.Heap.touch t.slot)
    end;
    t.outputs.(i) <- v :: t.outputs.(i);
    Rcons_runtime.Heap.touch t.slot
  end
let all t = Array.to_list t.outputs |> List.concat
let decided t i = t.outputs.(i) <> []

(* Agreement: no two output values produced (by any processes, in any
   runs) are different. *)
let agreement_ok t =
  match all t with [] -> true | v :: rest -> List.for_all (( = ) v) rest

(* Validity: each output value is the input value of some process. *)
let validity_ok t =
  List.for_all (fun v -> Array.exists (( = ) v) t.inputs) (all t)

let check_exn ~fail t =
  if not (agreement_ok t) then fail "agreement violated";
  if not (validity_ok t) then fail "validity violated"
