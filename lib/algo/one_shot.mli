(** One-shot recoverable consensus from a single atomic consensus-style
    primitive (a sticky cell: the first proposal is recorded forever).
    The "hardware" RC instance used for the next-pointers of the
    universal construction (Section 4) and as the default C_r of
    Figure 4.  Recoverability is immediate: the winner persists in
    non-volatile memory and repeated proposals return it. *)

type 'v t

val create : unit -> 'v t

val decide : 'v t -> 'v -> 'v
(** Atomic propose (one step): returns the recorded winner, installing
    [v] if none yet. *)

val decide_durable : ?equal:('v -> 'v -> bool) -> 'v t -> 'v -> 'v
(** Persist-annotated propose for the write-back cache model: propose,
    flush the sticky cell, re-read to confirm the winner survived, retry
    otherwise.  The returned winner is durable.  [equal] defaults to
    structural equality; pass [( == )] for winners that cannot be
    structurally compared. *)

val poll : 'v t -> 'v option
(** Read the decision without proposing (one step). *)

val peek : 'v t -> 'v option
(** Out-of-simulation inspection. *)
