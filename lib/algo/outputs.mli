(** Output log for consensus executions.  Every value a process returns
    is appended -- a process may output several times across
    crash/recovery cycles, and agreement must hold over {e all} outputs.
    Recording is a meta-observation, not a shared-memory step. *)

type 'v t = {
  inputs : 'v array;
  outputs : 'v list array;
  mutable slot : Rcons_runtime.Heap.slot option;
      (** fingerprint cache slot; [record] touches it *)
}

val make : inputs:'v array -> 'v t
val record : 'v t -> int -> 'v -> unit
val all : 'v t -> 'v list
val decided : 'v t -> int -> bool

val agreement_ok : 'v t -> bool
(** No two output values produced (by any processes, in any runs) are
    different. *)

val validity_ok : 'v t -> bool
(** Every output value is the input value of some process. *)

val check_exn : fail:(string -> unit) -> 'v t -> unit
(** Call [fail] on the first violated property. *)
