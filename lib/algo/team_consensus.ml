(* Recoverable team consensus from a readable n-recording type: the
   algorithm of Figure 2 of the paper, instantiated with a machine-derived
   recording certificate (Theorem 8).

   The code in the paper assumes q0 is not in Q_B; when the certificate has
   q0 in Q_B (and hence, by condition 1, not in Q_A) the roles of the two
   teams are swapped internally.  Processes on team A update O when they
   find it in state q0.  Processes on team B do likewise, except that a
   *lone* process on team B instead yields to team A when it sees that some
   team-A process has already written its input (line 19-20 of Figure 2);
   this is what makes the algorithm safe when q0 can recur in Q_A.

   [faithful] (default true) keeps the |B| = 1 guard of line 19.  Setting
   it to false reproduces the broken variant discussed after Lemma 7: with
   two processes on team B the yield rule violates agreement, and the
   bounded model checker finds the counterexample -- a negative control
   showing the simulator can detect real bugs.

   [annotated] (default false) adds persist barriers for the write-back
   cache model ([Persist]): every shared write is flushed, and every
   shared read goes through the link-and-persist loop (read, flush the
   line, re-read until stable) so no decision is ever based on a value
   that a crash could still revert.  The write-side barrier alone is NOT
   enough: a reader can observe an un-flushed write, the writer crashes
   (reverting it), and the reader decides on vanished state -- the
   violating schedules the lossy explorer finds against the un-annotated
   code are exactly of this shape.  Under the eager model the barriers
   are semantic no-ops (but still steps), so the annotated variant stays
   correct there too. *)

open Rcons_runtime
open Rcons_check

type 'v t = {
  decide : Rcons_spec.Team.t -> int -> 'v -> 'v;
      (* [decide team slot v]: run DECIDE(v) as the [slot]-th process of
         [team] (slots index the certificate's per-team operation lists).
         Must be called from inside a simulated process; on crash the
         caller's whole run restarts, which re-enters this code from the
         beginning exactly as in the model. *)
  size_a : int;
  size_b : int;
}

let create ?(faithful = true) ?(annotated = false) (Certificate.Recording ((module T), d)) :
    'v t =
  (* Orient the teams so that q0 is not in Q_(code team B). *)
  let ops_a, ops_b, q_a, swap =
    if d.q0_in_q_b then (d.ops_b, d.ops_a, d.q_b, true) else (d.ops_a, d.ops_b, d.q_a, false)
  in
  let ops_a = Array.of_list ops_a and ops_b = Array.of_list ops_b in
  let o = Sim_obj.make (module T) d.q0 in
  let r_a : 'v option Cell.t = Cell.make None in
  let r_b : 'v option Cell.t = Cell.make None in
  (* Persist-annotated access paths: durable reads, flushed writes. *)
  let read_o () = if annotated then Sim_obj.read_persist o else Sim_obj.read o in
  let read_r c = if annotated then Cell.read_persist c else Cell.read c in
  let write_r c v =
    Cell.write c v;
    if annotated then Cell.flush c
  in
  let apply_o op =
    ignore (Sim_obj.apply o op);
    if annotated then Sim_obj.flush o
  in
  let in_q_a q = List.exists (fun q' -> T.compare_state q' q = 0) q_a in
  let is_q0 q = T.compare_state q d.q0 = 0 in
  (* Apply an operation and return the durable state it left O in.  The
     annotated variant must retry while that state is still [q0]: the
     apply may have been absorbed as a no-op into ANOTHER process's
     un-flushed change (O volatilely out of q0), and that change -- our
     operation's effect with it -- reverts if the other process crashes
     before flushing.  Once [read_o] (a link-and-persist read) returns a
     non-q0 state, some operation is durably installed and the decision
     it induces can never be rolled back.  Un-annotated, this is exactly
     the original apply-then-read of Figure 2. *)
  let rec apply_o_durable op =
    apply_o op;
    let q = read_o () in
    if annotated && is_q0 q then apply_o_durable op else q
  in
  let return_team_a () =
    match read_r r_a with Some v -> v | None -> invalid_arg "Figure 2: R_A empty at return"
  in
  let return_team_b () =
    match read_r r_b with Some v -> v | None -> invalid_arg "Figure 2: R_B empty at return"
  in
  let finish q = if in_q_a q then return_team_a () else return_team_b () in
  (* Figure 2, lines 4-13: code for process [slot] of team A. *)
  let decide_a slot v =
    write_r r_a (Some v);
    let q = read_o () in
    let q = if is_q0 q then apply_o_durable ops_a.(slot) else q in
    finish q
  in
  (* Figure 2, lines 15-28: code for process [slot] of team B. *)
  let decide_b slot v =
    write_r r_b (Some v);
    let q = read_o () in
    if is_q0 q then
      if (Array.length ops_b = 1 || not faithful) && read_r r_a <> None then
        return_team_a () (* line 20: the lone team-B process yields *)
      else finish (apply_o_durable ops_b.(slot))
    else finish q
  in
  let decide team slot v =
    let effective =
      if swap then Rcons_spec.Team.opposite team else team
    in
    match effective with
    | Rcons_spec.Team.A -> decide_a slot v
    | Rcons_spec.Team.B -> decide_b slot v
  in
  (* Sizes are reported in the certificate's labelling (callers address
     teams and slots as in the certificate; the swap is internal). *)
  { decide; size_a = List.length d.ops_a; size_b = List.length d.ops_b }
