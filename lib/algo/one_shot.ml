(* One-shot recoverable consensus from a single atomic consensus-style
   primitive (a sticky cell: the first proposal wins and is recorded
   forever).  This is the "hardware" RC instance used inside the universal
   construction (Section 4) for the next-pointers of list nodes, and as
   the consensus building block C_r of the simultaneous-crash algorithm.

   Recoverability is immediate: the winning value persists in non-volatile
   memory, and repeated proposals (by recovered processes) return the
   recorded winner.  Such an object is n-recording for every n -- see the
   [Consensus_obj] and [Cas] entries of the catalogue. *)

open Rcons_runtime

type 'v t = { cell : 'v option Cell.t }

let create () = { cell = Cell.make None }

(* Atomic propose: one step, like any other object operation. *)
let decide t v =
  Sim.step ~label:"one-shot-consensus"
    ~fp:(Cell.footprint t.cell Rcons_spec.Footprint.Update) (fun () ->
      match Cell.peek t.cell with
      | Some w -> w
      | None ->
          Cell.poke t.cell (Some v);
          v)

(* Durable propose for the write-back cache model: the winning [poke]
   above is an ordinary cached write, so under a lossy policy the
   "sticky" decision can vanish with its proposer's crash until flushed.
   Propose, flush the cell, and re-read to confirm the winner survived;
   if it was reverted (or replaced) meanwhile, retry.  [equal] compares
   winners (pass [( == )] for values that cannot be compared
   structurally). *)
let rec decide_durable ?(equal = ( = )) t v =
  let w = decide t v in
  Cell.flush t.cell;
  match Cell.read t.cell with
  | Some w' when equal w' w -> w'
  | _ -> decide_durable ~equal t v

(* Read the decision without proposing; None if undecided. *)
let poll t = Cell.read t.cell
let peek t = Cell.peek t.cell
