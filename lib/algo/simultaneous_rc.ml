(* Recoverable consensus under *simultaneous* crashes from standard
   consensus instances: the algorithm of Figure 4 (Theorem 1 / Appendix A).

   Processes work through rounds r = 1, 2, ...; round r uses a fresh
   standard-consensus instance C_r and a register D[r] recording its
   output.  Round[j] remembers the largest round process j has entered, so
   that after a crash p_j never accesses an instance twice (Lemma 27); a
   recovering process catches its preference up from D[r-1] instead.  A
   process returns once it completes a round that no process has moved
   beyond.  The arrays are unbounded, as footnote 2 of the paper allows
   (Golab showed bounded space is impossible for such a transformation).

   The consensus instances are pluggable: any standard consensus algorithm
   works, since each process invokes each instance at most once and a
   process that crashed mid-invocation looks like a stalled process to a
   wait-free algorithm. *)

open Rcons_runtime

type 'v consensus = { propose : int -> 'v -> 'v } (* pid -> input -> output *)

type 'v t = {
  n : int;
  round : int Cell.t array; (* Round[1..n], initially 0 *)
  d : 'v option Growable.t; (* D[1..infinity], initially None *)
  instance : int -> 'v consensus; (* C_1, C_2, ..., created on demand *)
}

let create ~n ~make_consensus =
  let instances : (int, 'v consensus) Hashtbl.t = Hashtbl.create 16 in
  let instance r =
    match Hashtbl.find_opt instances r with
    | Some c -> c
    | None ->
        (* Journal the materialization: a rolled-back execution must not
           leave a consensus instance behind (a later branch would find
           a pre-decided object).  The rollback feed takes the find path
           for instances created at-or-before the mark. *)
        let c = make_consensus () in
        if Undo.recording () then
          Undo.log (fun () -> Hashtbl.remove instances r);
        Hashtbl.add instances r c;
        c
  in
  {
    n;
    round = Array.init n (fun _ -> Cell.make 0);
    d = Growable.make (fun _ -> None);
    instance;
  }

(* Figure 4: Decide(v) for process j.  Restarting from the beginning after
   a crash is exactly the model's recovery behaviour. *)
let decide t j v =
  let pref = ref v in
  let result = ref None in
  let r = ref 1 in
  let catch_up () =
    if !r > 1 then
      match Growable.read t.d (!r - 1) with Some w -> pref := w | None -> ()
  in
  while !result = None do
    if Cell.read t.round.(j) < !r then begin
      Cell.write t.round.(j) !r;
      catch_up ();
      pref := (t.instance !r).propose j !pref;
      Growable.write t.d !r (Some !pref);
      let all_le = ref true in
      for k = 0 to t.n - 1 do
        if Cell.read t.round.(k) > !r then all_le := false
      done;
      if !all_le then result := Some !pref
    end
    else catch_up ();
    incr r
  done;
  Option.get !result

(* The maximum round recorded so far: the number of consensus instances an
   execution consumed (grows with the number of simultaneous crashes). *)
let rounds_used t =
  Array.fold_left (fun acc c -> max acc (Cell.peek c)) 0 t.round
