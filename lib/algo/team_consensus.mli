(** Recoverable team consensus from a readable n-recording type: the
    algorithm of Figure 2 of the paper, instantiated with a
    machine-derived recording certificate (Theorem 8).

    The paper's code assumes [q0] is not in Q_B; when the certificate has
    [q0] in Q_B (hence, by disjointness, not in Q_A) the team roles are
    swapped internally -- callers always address teams in the
    certificate's own labelling.  Processes update O when they find it in
    state [q0]; a {e lone} process on (code) team B instead yields to
    team A when some team-A process has already written its input
    (lines 19-20), which is what makes the algorithm safe when [q0] can
    recur inside Q_A (Lemma 7). *)

type 'v t = {
  decide : Rcons_spec.Team.t -> int -> 'v -> 'v;
      (** [decide team slot v]: run DECIDE(v) as the [slot]-th process of
          [team].  Must be called from inside a simulated process; when
          the process crashes, its whole run restarts and re-enters this
          code from the beginning, exactly as in the model. *)
  size_a : int;
  size_b : int;
}

val create :
  ?faithful:bool -> ?annotated:bool -> Rcons_check.Certificate.recording -> 'v t
(** [faithful] (default [true]) keeps the |B| = 1 guard of line 19.
    [~faithful:false] reproduces the broken variant discussed after
    Lemma 7 -- with two processes on the yielding team it violates
    agreement, and the model checker exhibits the paper's bad scenario
    (a negative control for the whole toolchain).

    [annotated] (default [false]) adds persist barriers for the
    write-back cache model: flushed writes and link-and-persist reads
    ({!Rcons_runtime.Cell.read_persist}), re-establishing agreement
    under the [Lossy] {!Rcons_runtime.Persist} policy -- the
    un-annotated original demonstrably violates it (see
    [_counterexamples/]).  A semantic no-op (but extra steps) under the
    default eager model. *)
