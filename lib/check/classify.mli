(** Classification of object types in the consensus and recoverable
    consensus hierarchies.

    For a deterministic readable type T, with respect to its declared
    operation universe:
    - [cons(T)] = max n such that T is n-discerning (Theorem 3, exact);
    - [rcons(T)] is k or k+1 where k = max n such that T is n-recording
      (Theorems 8 and 14), further capped by [rcons <= cons]
      (Corollary 17).

    Both properties are downward closed (Observation 6 and its
    discerning analogue), so the maxima are found by upward scanning.
    A type passing at the scan limit is reported as {!At_least}: no
    finite procedure distinguishes "large" from "infinite" in general. *)

type level = Finite of int | At_least of int

val pp_level : Format.formatter -> level -> unit
val equal_level : level -> level -> bool

val max_level : limit:int -> (int -> bool) -> level
(** [max_level ~limit prop]: largest n in [2, limit] satisfying the
    downward-closed [prop], scanning upwards; [Finite 1] if [prop 2] is
    false (one process can always decide alone).
    @raise Invalid_argument if [limit < 2]. *)

val max_discerning : ?domains:int -> ?limit:int -> ?certs:string -> Rcons_spec.Object_type.t -> level
(** Default [limit] is 8; [?domains] (default 1) fans each per-level
    witness search across that many OCaml 5 domains — the reported level
    is independent of [domains].

    The scan is incremental: one memoized search instance is shared
    across all levels and the level-n witness seeds the level-(n+1)
    enumeration.  [?certs] names a {!Cert_cache} directory: each level
    is looked up there first (entries are revalidated before being
    trusted — see {!Cert_cache}) and recomputed levels are written back.
    Neither knob changes the reported level. *)

val max_recording : ?domains:int -> ?limit:int -> ?certs:string -> Rcons_spec.Object_type.t -> level
(** Same knobs as {!max_discerning}, for the n-recording property. *)

(** Interval [lower, upper]; [upper = None] means no finite upper bound
    was established. *)
type bounds = { lower : int; upper : int option }

val pp_bounds : Format.formatter -> bounds -> unit

val cons_bounds_of : readable:bool -> level -> bounds option
(** Pure derivation of the cons interval from an already-computed
    discerning level; [None] when not readable. *)

val rcons_bounds_of : readable:bool -> discerning:level -> level -> bounds option
(** Pure derivation of the rcons interval from already-computed
    discerning and recording levels; [None] when not readable. *)

val cons_bounds :
  ?domains:int -> ?limit:int -> ?certs:string -> Rcons_spec.Object_type.t -> bounds option
(** [None] for non-readable types: Theorem 3 ties the discerning level
    to cons only in the presence of a READ operation. *)

val rcons_bounds :
  ?domains:int -> ?limit:int -> ?certs:string -> Rcons_spec.Object_type.t -> bounds option
(** [None] for non-readable types (Theorem 8 needs the READ; the
    Theorem 14 upper bound alone is not an interval). *)

type report = {
  type_name : string;
  is_readable : bool;
  discerning : level;
  recording : level;
  cons : bounds option;
  rcons : bounds option;
}

val classify : ?domains:int -> ?limit:int -> ?certs:string -> Rcons_spec.Object_type.t -> report
(** The full report, from exactly one discerning scan and one recording
    scan (the bounds are derived, not re-searched).  [?domains]
    parallelizes the underlying witness searches and [?certs] persists
    per-level results across runs ({!Cert_cache}); neither changes any
    field of the result. *)

val pp_bounds_option : Format.formatter -> bounds option -> unit
val pp_report : Format.formatter -> report -> unit
