(** Persisted certificate cache for the classification pipeline.

    One JSON file per (behavioural fingerprint, property, level) under a
    cache directory (conventionally [_certs/]), keyed by
    {!Rcons_spec.Object_type.fingerprint} so catalogue aliases share
    entries and any behavioural change to a type orphans its old files.

    Loaded entries are never trusted: positive entries are re-checked
    from scratch against Definition 2 / Definition 4 and their derived
    sets compared digest-for-digest (the caller receives the recomputed
    certificate data); negative entries are accepted only when the
    stored fingerprint and candidate-space size match the live module's
    (sound because the decision procedure is a deterministic function of
    the fingerprinted transition table).  Anything else is a [Miss] and
    the caller recomputes. *)

type 'a lookup =
  | Hit of 'a  (** revalidated positive entry (freshly recomputed data) *)
  | Negative  (** revalidated "no witness at this level" entry *)
  | Miss  (** no entry, or an entry that failed revalidation *)

type property = Recording | Discerning

val property_name : property -> string

val file_name : property:property -> fingerprint:string -> n:int -> string
(** Basename of the entry for a key, [<property>-<fingerprint>-n<n>.json]. *)

val hex_digest : 'a -> string
(** MD5 hex of {!Rcons_spec.Object_type.digest}; the stored set-digest
    form. *)

val load_recording :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  check:
    (q0:'s -> ops_a:'o list -> ops_b:'o list -> ('s, 'o) Certificate.recording_data option)
    option ->
  dir:string ->
  fingerprint:string ->
  n:int ->
  ('s, 'o) Certificate.recording_data lookup
(** [~check] is the single-candidate decision procedure used to
    revalidate a positive entry; pass [Some] of a warm
    {!Recording.Scan} instance's [check] so the revalidation shares its
    memo tables ([None] falls back to a fresh standalone instance per
    call). *)

val load_discerning :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  check:
    (q0:'s ->
    ops_a:'o list ->
    ops_b:'o list ->
    ('s, 'o, 'r) Certificate.discerning_data option)
    option ->
  dir:string ->
  fingerprint:string ->
  n:int ->
  ('s, 'o, 'r) Certificate.discerning_data lookup

val store_recording :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  dir:string ->
  fingerprint:string ->
  depth:int ->
  n:int ->
  ('s, 'o) Certificate.recording_data option ->
  unit
(** Write (atomically, creating [dir] if needed) the entry for a scan
    result; [None] records an exhausted candidate space.  [depth] is the
    fingerprint's BFS depth and must be [>= n] for the entry to be
    loadable.  A witness mentioning states/operations outside the
    declared universes is silently not cached. *)

val store_discerning :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  dir:string ->
  fingerprint:string ->
  depth:int ->
  n:int ->
  ('s, 'o, 'r) Certificate.discerning_data option ->
  unit

(** {2 Maintenance — the [certs] CLI subcommand} *)

type info = {
  file : string;
  property : property;
  fingerprint : string;
  depth : int;
  n : int;
  positive : bool;
  type_hint : string;  (** informational type name recorded at store time *)
}

type status =
  | Valid
  | Stale_entry of string
      (** well-formed but failed revalidation against the live module *)
  | Corrupt of string  (** unparseable or shape-invalid *)

val info_of_file : string -> (info, string) result
(** Parse an entry's header; [Error] iff the file is corrupt. *)

val list_dir : string -> (string * (info, string) result) list
(** All [*.json] entries under a directory, sorted by name; missing
    directory is an empty cache. *)

val resolve : fingerprint:string -> depth:int -> Rcons_spec.Object_type.t option
(** A catalogue type (including small parametric S_n / T_n instances)
    whose behaviour matches the fingerprint at that depth. *)

val revalidate_file : string -> status
(** Full pipeline for one entry: parse, re-anchor by fingerprint via
    {!resolve}, then run the same revalidation as [load_*]. *)

val gc : string -> (string * string) list
(** Delete every entry that is not [Valid]; returns the deleted files
    with reasons. *)
