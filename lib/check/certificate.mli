(** Machine-checkable witnesses produced by the decision procedures and
    consumed by the executable algorithms.

    A {!recording} certificate is exactly the data needed to instantiate
    the recoverable team-consensus algorithm of Figure 2 (Theorem 8): the
    initial state [q0], one operation per process on each team, and the
    computed sets Q_A and Q_B.  A {!discerning} certificate is the data
    needed for the standard team-consensus algorithm of Ruppert's
    characterization (Theorem 3): per-process operations together with
    the response/state sets R_{A,j} and R_{B,j}. *)

type ('s, 'o) recording_data = {
  q0 : 's;
  ops_a : 'o list;  (** operation of each process on team A *)
  ops_b : 'o list;
  q_a : 's list;  (** Q_A(q0, op_1, ..., op_n) *)
  q_b : 's list;
  q0_in_q_a : bool;
  q0_in_q_b : bool;
}

type recording =
  | Recording :
      (module Rcons_spec.Object_type.S
         with type state = 's
          and type op = 'o
          and type resp = 'r)
      * ('s, 'o) recording_data
      -> recording

type ('s, 'o, 'r) discerning_data = {
  dq0 : 's;
  procs : (Rcons_spec.Team.t * 'o) array;  (** team and operation per process *)
  r_a : ('r * 's) list array;  (** R_{A,j} for each process j *)
  r_b : ('r * 's) list array;
}

type discerning =
  | Discerning :
      (module Rcons_spec.Object_type.S
         with type state = 's
          and type op = 'o
          and type resp = 'r)
      * ('s, 'o, 'r) discerning_data
      -> discerning

val recording_teams : recording -> int * int
(** Sizes [(|A|, |B|)] of the certificate's two teams. *)

val symmetry_classes : recording -> int list list
(** Classes of processes made interchangeable by the certificate's
    operation assignment, under the standard pid layout (team A slots
    first, then team B): slots of one team whose operations are
    [compare_op]-equal.  Singleton classes are dropped, so the result is
    [[]] when the certificate carries no symmetry.  Suitable for
    {!Rcons_runtime.Explore.explore}'s [?symmetry] {e only if} the
    workload also gives every member of a class the same input -- the
    explorer cannot check that, the caller must. *)

val discerning_size : discerning -> int
(** Number of processes in the certificate's assignment. *)

val discerning_teams : discerning -> int * int
(** Sizes [(|A|, |B|)] of the certificate's two teams. *)

val pp_recording : Format.formatter -> recording -> unit
(** Render a recording certificate, including its Q-sets.  The rendering
    is canonical: two certificates print identically iff they carry the
    same data, which the parallel-determinism tests rely on. *)

val pp_discerning : Format.formatter -> discerning -> unit
(** Render a discerning certificate, including every per-process R-set;
    canonical in the same sense as {!pp_recording}. *)

val validate_recording : recording -> bool
(** Re-check the certificate against Definition 4 from scratch
    (recompute Q_A and Q_B and all three conditions); used by the tests
    to guard against checker bugs. *)
