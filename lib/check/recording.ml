(* Decision procedure for the n-recording property (Definition 4).

   A deterministic type T is n-recording if there exist a state q0, a
   partition of n processes into two non-empty teams A and B, and
   operations op_1, ..., op_n such that
     (1) Q_A and Q_B are disjoint,
     (2) q0 is not in Q_A, or |B| = 1,
     (3) q0 is not in Q_B, or |A| = 1.

   The search enumerates candidate initial states, team sizes (up to the
   team-swap symmetry) and operation multisets per team, and decides each
   candidate exactly by computing Q_A and Q_B.  The answer is exact with
   respect to the type's declared finite operation universe. *)

open Rcons_spec

(* Check one candidate (q0, team multisets); return the certificate data on
   success. *)
let check_candidate (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~q0
    ~(ops_a : o list) ~(ops_b : o list) =
  let module S = Search.Make (T) in
  let ms_a = S.multiset_of_list ops_a and ms_b = S.multiset_of_list ops_b in
  let q_a = S.reachable ~q0 ~first:ms_a ~other:ms_b in
  let q_b = S.reachable ~q0 ~first:ms_b ~other:ms_a in
  let q0_in_q_a = S.State_set.mem q0 q_a and q0_in_q_b = S.State_set.mem q0 q_b in
  let cond1 = S.State_set.(is_empty (inter q_a q_b)) in
  let cond2 = (not q0_in_q_a) || List.length ops_b = 1 in
  let cond3 = (not q0_in_q_b) || List.length ops_a = 1 in
  if cond1 && cond2 && cond3 then
    Some
      {
        Certificate.q0;
        ops_a;
        ops_b;
        q_a = S.State_set.elements q_a;
        q_b = S.State_set.elements q_b;
        q0_in_q_a;
        q0_in_q_b;
      }
  else None

(* Find a witness that T is n-recording, or None if no candidate over the
   declared universes satisfies Definition 4.  The candidate space is
   partitioned by initial state x team split x operation multisets and
   fanned out across [domains] (default: sequential); Pool.find_first
   guarantees the first candidate in enumeration order wins, so the
   returned certificate is identical to the sequential one. *)
let witness ?domains (Object_type.Pack (module T)) n : Certificate.recording option =
  if n < 2 then invalid_arg "Recording.witness: n must be >= 2";
  let candidates =
    List.concat_map
      (fun q0 ->
        List.concat_map
          (fun (a, b) ->
            Enumerate.pairs
              (Enumerate.multisets a T.update_ops)
              (Enumerate.multisets b T.update_ops)
            |> List.map (fun (ops_a, ops_b) -> (q0, ops_a, ops_b)))
          (Enumerate.team_splits n))
      T.candidate_initial_states
    |> Array.of_list
  in
  Rcons_par.Pool.find_first ?domains (Array.length candidates) (fun i ->
      let q0, ops_a, ops_b = candidates.(i) in
      match check_candidate (module T) ~q0 ~ops_a ~ops_b with
      | Some data -> Some (Certificate.Recording ((module T), data))
      | None -> None)

let is_recording ?domains ot n = Option.is_some (witness ?domains ot n)
