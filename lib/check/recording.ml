(* Decision procedure for the n-recording property (Definition 4).

   A deterministic type T is n-recording if there exist a state q0, a
   partition of n processes into two non-empty teams A and B, and
   operations op_1, ..., op_n such that
     (1) Q_A and Q_B are disjoint,
     (2) q0 is not in Q_A, or |B| = 1,
     (3) q0 is not in Q_B, or |A| = 1.

   The search enumerates candidate initial states, team sizes (up to the
   team-swap symmetry) and operation multisets per team -- equal splits
   additionally drop the mirrored half of the multiset-pair square (see
   {!Enumerate.sym_pairs}) -- and decides each candidate exactly by
   computing Q_A and Q_B.  The answer is exact with respect to the type's
   declared finite operation universe.

   [Scan (T)] is the per-type incremental form used by {!Classify}: one
   memoized {!Search.Make} instance shared across every candidate and
   every level, and a [?seed] hook that tries one-operation extensions of
   the level-(n-1) witness before falling back to the full enumeration
   (the monotone converse of Observation 6: a witness at level n-1 is the
   natural stem of one at level n).  Seeding can only change which
   witness is found first, never whether one exists, so the derived
   levels are seed-independent. *)

open Rcons_spec

module Scan (T : Object_type.S) = struct
  module S = Search.Make (T)

  let check ~q0 ~ops_a ~ops_b =
    let ms_a = S.multiset_of_list ops_a and ms_b = S.multiset_of_list ops_b in
    let q_a = S.reachable ~q0 ~first:ms_a ~other:ms_b in
    let q_b = S.reachable ~q0 ~first:ms_b ~other:ms_a in
    let q0_in_q_a = S.State_set.mem q0 q_a and q0_in_q_b = S.State_set.mem q0 q_b in
    let cond1 = S.State_set.(is_empty (inter q_a q_b)) in
    let cond2 = (not q0_in_q_a) || List.length ops_b = 1 in
    let cond3 = (not q0_in_q_b) || List.length ops_a = 1 in
    if cond1 && cond2 && cond3 then
      Some
        {
          Certificate.q0;
          ops_a;
          ops_b;
          q_a = S.State_set.elements q_a;
          q_b = S.State_set.elements q_b;
          q0_in_q_a;
          q0_in_q_b;
        }
    else None

  let candidates n = Enumerate.candidates ~initial_states:T.candidate_initial_states ~ops:T.update_ops n

  (* One-operation extensions of a lower-level witness, tried before the
     full enumeration.  Sorted per team and deduplicated so the seeded
     prefix stays small. *)
  let seeded (d : (T.state, T.op) Certificate.recording_data) =
    let cmp (a1, b1) (a2, b2) =
      let c = List.compare T.compare_op a1 a2 in
      if c <> 0 then c else List.compare T.compare_op b1 b2
    in
    List.concat_map
      (fun op ->
        [
          (List.sort T.compare_op (op :: d.Certificate.ops_a), d.Certificate.ops_b);
          (d.Certificate.ops_a, List.sort T.compare_op (op :: d.Certificate.ops_b));
        ])
      T.update_ops
    |> List.sort_uniq cmp
    |> List.map (fun (ops_a, ops_b) -> (d.Certificate.q0, ops_a, ops_b))

  let witness_at ?domains ?seed n : (T.state, T.op) Certificate.recording_data option =
    if n < 2 then invalid_arg "Recording.witness: n must be >= 2";
    let seeded_prefix = match seed with None -> [] | Some d -> seeded d in
    let all = Array.of_list (seeded_prefix @ candidates n) in
    Rcons_par.Pool.find_first ?domains (Array.length all) (fun i ->
        let q0, ops_a, ops_b = all.(i) in
        check ~q0 ~ops_a ~ops_b)
end

(* Check one candidate (q0, team multisets); return the certificate data on
   success.  Standalone form with its own search instance; callers that
   sweep many candidates should use [Scan] so the memo tables persist. *)
let check_candidate (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~q0
    ~(ops_a : o list) ~(ops_b : o list) =
  let module Sc = Scan (T) in
  Sc.check ~q0 ~ops_a ~ops_b

(* Find a witness that T is n-recording, or None if no candidate over the
   declared universes satisfies Definition 4.  The candidate space is
   partitioned by initial state x team split x operation multisets and
   fanned out across [domains] (default: sequential); Pool.find_first
   guarantees the first candidate in enumeration order wins, so the
   returned certificate is identical to the sequential one. *)
let witness ?domains (Object_type.Pack (module T)) n : Certificate.recording option =
  let module Sc = Scan (T) in
  Option.map (fun d -> Certificate.Recording ((module T), d)) (Sc.witness_at ?domains n)

let is_recording ?domains ot n = Option.is_some (witness ?domains ot n)
