(* Machine-checkable witnesses produced by the decision procedures and
   consumed by the executable algorithms.

   A recording certificate is exactly the data needed to instantiate the
   recoverable team-consensus algorithm of Figure 2: the initial state q0,
   one operation per process on each team, and the computed sets Q_A and
   Q_B.  A discerning certificate is the data needed for the standard
   (crash-free) team-consensus algorithm of Ruppert's characterization
   (Theorem 3): per-process operations together with the response/state
   sets R_{A,j} and R_{B,j}. *)

type ('s, 'o) recording_data = {
  q0 : 's;
  ops_a : 'o list; (* operation of each process on team A *)
  ops_b : 'o list;
  q_a : 's list; (* Q_A(q0, op_1, ..., op_n) *)
  q_b : 's list;
  q0_in_q_a : bool;
  q0_in_q_b : bool;
}

type recording =
  | Recording :
      (module Rcons_spec.Object_type.S
         with type state = 's
          and type op = 'o
          and type resp = 'r)
      * ('s, 'o) recording_data
      -> recording

type ('s, 'o, 'r) discerning_data = {
  dq0 : 's;
  procs : (Rcons_spec.Team.t * 'o) array; (* team and operation per process *)
  r_a : ('r * 's) list array; (* R_{A,j} for each process j *)
  r_b : ('r * 's) list array;
}

type discerning =
  | Discerning :
      (module Rcons_spec.Object_type.S
         with type state = 's
          and type op = 'o
          and type resp = 'r)
      * ('s, 'o, 'r) discerning_data
      -> discerning

let recording_teams (Recording (_, d)) = (List.length d.ops_a, List.length d.ops_b)

(* Interchangeable-process classes for the symmetry-reducing explorer:
   slots of one team assigned compare_op-equal operations run the same
   code in the Figure 2 algorithm, so -- provided the workload also gives
   them the same input -- relabeling them maps executions to executions.
   Pids follow the standard layout (team A slots first, then team B);
   singleton classes carry no symmetry and are dropped. *)
let symmetry_classes (Recording ((module T), d)) =
  let group off ops =
    let rec insert groups i op =
      match groups with
      | [] -> [ (op, [ i ]) ]
      | (o, is) :: tl when T.compare_op o op = 0 -> (o, i :: is) :: tl
      | g :: tl -> g :: insert tl i op
    in
    let _, groups = List.fold_left (fun (i, gs) op -> (i + 1, insert gs i op)) (0, []) ops in
    List.filter_map
      (fun (_, is) ->
        match is with
        | [] | [ _ ] -> None
        | is -> Some (List.rev_map (fun i -> i + off) is))
      groups
  in
  let na = List.length d.ops_a in
  group 0 d.ops_a @ group na d.ops_b

let discerning_size (Discerning (_, d)) = Array.length d.procs

let discerning_teams (Discerning (_, d)) =
  Array.fold_left
    (fun (a, b) (team, _) ->
      match team with Rcons_spec.Team.A -> (a + 1, b) | Rcons_spec.Team.B -> (a, b + 1))
    (0, 0) d.procs

let pp_recording ppf (Recording ((module T), d)) =
  Format.fprintf ppf "@[<v>type %s, q0 = %a@,team A ops: %a@,team B ops: %a@,Q_A = %a@,Q_B = %a@]"
    T.name T.pp_state d.q0
    (Rcons_spec.Object_type.pp_list T.pp_op)
    d.ops_a
    (Rcons_spec.Object_type.pp_list T.pp_op)
    d.ops_b
    (Rcons_spec.Object_type.pp_list T.pp_state)
    d.q_a
    (Rcons_spec.Object_type.pp_list T.pp_state)
    d.q_b

let pp_discerning ppf (Discerning ((module T), d)) =
  let pp_pair ppf (r, s) = Format.fprintf ppf "(%a,%a)" T.pp_resp r T.pp_state s in
  let pp_proc ppf (team, op) = Format.fprintf ppf "%a:%a" Rcons_spec.Team.pp team T.pp_op op in
  Format.fprintf ppf "@[<v>type %s, q0 = %a@,procs: %a@," T.name T.pp_state d.dq0
    (Rcons_spec.Object_type.pp_list pp_proc)
    (Array.to_list d.procs);
  Array.iteri
    (fun j (ra, rb) ->
      Format.fprintf ppf "R_A,%d = %a  R_B,%d = %a@," j
        (Rcons_spec.Object_type.pp_list pp_pair)
        ra j
        (Rcons_spec.Object_type.pp_list pp_pair)
        rb)
    (Array.map2 (fun a b -> (a, b)) d.r_a d.r_b);
  Format.fprintf ppf "@]"

(* Re-validate a recording certificate against Definition 4 from scratch.
   Used by tests to guard against checker bugs: the certificate must be
   self-consistent independently of how the search produced it. *)
let validate_recording (Recording ((module T), d)) =
  let module S = Search.Make (T) in
  let ms_a = S.multiset_of_list d.ops_a and ms_b = S.multiset_of_list d.ops_b in
  let q_a = S.reachable ~q0:d.q0 ~first:ms_a ~other:ms_b in
  let q_b = S.reachable ~q0:d.q0 ~first:ms_b ~other:ms_a in
  let same_set computed declared =
    S.State_set.equal computed (S.State_set.of_list declared)
  in
  let cond1 = S.State_set.(is_empty (inter q_a q_b)) in
  let cond2 = (not (S.State_set.mem d.q0 q_a)) || List.length d.ops_b = 1 in
  let cond3 = (not (S.State_set.mem d.q0 q_b)) || List.length d.ops_a = 1 in
  same_set q_a d.q_a && same_set q_b d.q_b
  && d.q0_in_q_a = S.State_set.mem d.q0 q_a
  && d.q0_in_q_b = S.State_set.mem d.q0 q_b
  && cond1 && cond2 && cond3
  && d.ops_a <> [] && d.ops_b <> []
