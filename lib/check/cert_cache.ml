(* Persisted certificate cache for the classification pipeline.

   One JSON file per (behavioural fingerprint, property, level):

     <dir>/<property>-<fingerprint>-n<level>.json

   The key is {!Rcons_spec.Object_type.fingerprint}, not the type name,
   so catalogue aliases share entries and any change to a type's
   transition table, universes or readability silently invalidates its
   cache (the fingerprint moves, the old files become orphans for [gc]).

   Trust model: a loaded entry is NEVER trusted as-is.
   - A positive entry stores the witness candidate by *index* into the
     type's declared universes (no code or OCaml values are
     deserialized) plus digests of the certificate's derived sets.  On
     load the candidate is re-checked from scratch against Definition 2
     or 4 and the recomputed sets are compared digest-for-digest with
     the stored ones; the caller receives the freshly recomputed
     certificate data, not the stored bytes.
   - A negative entry stores only the size of the candidate space that
     was exhausted.  It is accepted iff the stored fingerprint matches
     the one recomputed from the live module at a depth >= the entry's
     level and the stored candidate count equals the live enumeration's.
     This is sound because the decision procedure is a deterministic
     function of the depth-bounded transition table the fingerprint
     pins: same fingerprint + same candidate space => same verdict.
   Anything that fails these checks is reported as a miss and the caller
   recomputes (and overwrites the entry). *)

open Rcons_spec
module Json = Rcons_runtime.Json

type 'a lookup = Hit of 'a | Negative | Miss
type property = Recording | Discerning

let property_name = function Recording -> "recording" | Discerning -> "discerning"
let format_tag = "rcons-cert-v1"

let file_name ~property ~fingerprint ~n =
  Printf.sprintf "%s-%s-n%d.json" (property_name property) fingerprint n

let path ~dir ~property ~fingerprint ~n =
  Filename.concat dir (file_name ~property ~fingerprint ~n)

(* MD5 hex of the canonical byte form of a plain-data value; used for the
   stored set digests. *)
let hex_digest v = Digest.to_hex (Digest.string (Object_type.digest v))

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file file contents =
  (if not (Sys.file_exists (Filename.dirname file)) then
     try Sys.mkdir (Filename.dirname file) 0o755 with Sys_error _ -> ());
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp file

(* Position of [x] in [universe] under [cmp], if any. *)
let index_of cmp universe x =
  let rec go i = function
    | [] -> None
    | y :: rest -> if cmp x y = 0 then Some i else go (i + 1) rest
  in
  go 0 universe

let candidate_count (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) n =
  Enumerate.candidate_count ~initial_states:T.candidate_initial_states ~ops:T.update_ops n

(* {2 Serialization} *)

let common_fields ~property ~type_hint ~fingerprint ~depth ~n =
  [
    ("format", Json.String format_tag);
    ("property", Json.String (property_name property));
    ("type_hint", Json.String type_hint);
    ("fingerprint", Json.String fingerprint);
    ("depth", Json.Int depth);
    ("n", Json.Int n);
  ]

let recording_json (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~fingerprint
    ~depth ~n (data : (s, o) Certificate.recording_data option) =
  let common =
    common_fields ~property:Recording ~type_hint:T.name ~fingerprint ~depth ~n
  in
  match data with
  | None ->
      Some
        (Json.Obj
           (common
           @ [ ("result", Json.String "none"); ("candidates", Json.Int (candidate_count (module T) n)) ]))
  | Some d ->
      let op_idx op = index_of T.compare_op T.update_ops op in
      let q0_idx = index_of T.compare_state T.candidate_initial_states d.Certificate.q0 in
      let idx_list ops = List.map op_idx ops in
      let all_some l = List.for_all Option.is_some l in
      let ia = idx_list d.Certificate.ops_a and ib = idx_list d.Certificate.ops_b in
      (* A witness outside the declared universes (impossible for the
         in-tree searches) is simply not cacheable. *)
      if q0_idx = None || not (all_some ia) || not (all_some ib) then None
      else
        let ints l = Json.List (List.map (fun o -> Json.Int (Option.get o)) l) in
        Some
          (Json.Obj
             (common
             @ [
                 ("result", Json.String "witness");
                 ("q0", Json.Int (Option.get q0_idx));
                 ("ops_a", ints ia);
                 ("ops_b", ints ib);
                 ("q_a", Json.String (hex_digest d.Certificate.q_a));
                 ("q_b", Json.String (hex_digest d.Certificate.q_b));
                 ("q0_in_q_a", Json.Bool d.Certificate.q0_in_q_a);
                 ("q0_in_q_b", Json.Bool d.Certificate.q0_in_q_b);
               ]))

let discerning_json (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~fingerprint
    ~depth ~n (data : (s, o, r) Certificate.discerning_data option) =
  let common =
    common_fields ~property:Discerning ~type_hint:T.name ~fingerprint ~depth ~n
  in
  match data with
  | None ->
      Some
        (Json.Obj
           (common
           @ [ ("result", Json.String "none"); ("candidates", Json.Int (candidate_count (module T) n)) ]))
  | Some d ->
      let op_idx op = index_of T.compare_op T.update_ops op in
      let q0_idx = index_of T.compare_state T.candidate_initial_states d.Certificate.dq0 in
      let proc_idxs =
        Array.to_list d.Certificate.procs
        |> List.map (fun (team, op) ->
               Option.map (fun i -> (team, i)) (op_idx op))
      in
      if q0_idx = None || not (List.for_all Option.is_some proc_idxs) then None
      else
        let procs =
          Json.List
            (List.map
               (fun p ->
                 let team, i = Option.get p in
                 Json.List [ Json.Int (match team with Team.A -> 0 | Team.B -> 1); Json.Int i ])
               proc_idxs)
        in
        let digests sets =
          Json.List (Array.to_list (Array.map (fun s -> Json.String (hex_digest s)) sets))
        in
        Some
          (Json.Obj
             (common
             @ [
                 ("result", Json.String "witness");
                 ("dq0", Json.Int (Option.get q0_idx));
                 ("procs", procs);
                 ("r_a", digests d.Certificate.r_a);
                 ("r_b", digests d.Certificate.r_b);
               ]))

let store_json ~dir ~property ~fingerprint ~n = function
  | None -> ()
  | Some json ->
      write_file (path ~dir ~property ~fingerprint ~n) (Json.to_string ~indent:2 json ^ "\n")

let store_recording (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~dir
    ~fingerprint ~depth ~n data =
  store_json ~dir ~property:Recording ~fingerprint ~n
    (recording_json (module T) ~fingerprint ~depth ~n data)

let store_discerning (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~dir
    ~fingerprint ~depth ~n data =
  store_json ~dir ~property:Discerning ~fingerprint ~n
    (discerning_json (module T) ~fingerprint ~depth ~n data)

(* {2 Revalidation} *)

(* Shape errors (missing/ill-typed fields) are "corrupt"; semantic
   mismatches against the live module are "stale".  [load_*] collapses
   both to [Miss]; the CLI keeps them apart for exit codes. *)
exception Stale of string

let stale fmt = Printf.ksprintf (fun m -> raise (Stale m)) fmt

let check_common json ~property ~fingerprint ~n =
  let str f = Json.to_str (Json.field f json) in
  let int f = Json.to_int (Json.field f json) in
  if str "format" <> format_tag then stale "unknown format tag %S" (str "format");
  if str "property" <> property_name property then
    stale "property mismatch: file says %S" (str "property");
  if str "fingerprint" <> fingerprint then stale "fingerprint mismatch (type behaviour changed)";
  if int "n" <> n then stale "level mismatch: file says n=%d" (int "n");
  if int "depth" < n then stale "fingerprint depth %d < n=%d cannot pin the verdict" (int "depth") n

let decode_index what universe i =
  match List.nth_opt universe i with
  | Some x -> x
  | None -> stale "%s index %d out of range" what i

(* Re-check a positive recording entry from scratch and compare the
   recomputed sets with the declared digests. *)
let validate_recording_json (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ?check
    ~fingerprint ~n json : (s, o) Certificate.recording_data option =
  let check =
    match check with
    | Some f -> f
    | None -> fun ~q0 ~ops_a ~ops_b -> Recording.check_candidate (module T) ~q0 ~ops_a ~ops_b
  in
  check_common json ~property:Recording ~fingerprint ~n;
  match Json.to_str (Json.field "result" json) with
  | "none" ->
      let declared = Json.to_int (Json.field "candidates" json) in
      let live = candidate_count (module T) n in
      if declared <> live then
        stale "candidate space changed: file exhausted %d, live enumeration has %d" declared live;
      None
  | "witness" ->
      let q0 =
        decode_index "q0" T.candidate_initial_states (Json.to_int (Json.field "q0" json))
      in
      let ops f =
        List.map
          (fun j -> decode_index f T.update_ops (Json.to_int j))
          (Json.to_list (Json.field f json))
      in
      let ops_a = ops "ops_a" and ops_b = ops "ops_b" in
      if List.length ops_a + List.length ops_b <> n then stale "team sizes do not sum to n=%d" n;
      (match check ~q0 ~ops_a ~ops_b with
      | None -> stale "stored candidate is not a Definition 4 witness"
      | Some d ->
          let expect field stored recomputed =
            if stored <> recomputed then stale "%s digest mismatch" field
          in
          expect "q_a" (Json.to_str (Json.field "q_a" json)) (hex_digest d.Certificate.q_a);
          expect "q_b" (Json.to_str (Json.field "q_b" json)) (hex_digest d.Certificate.q_b);
          if Json.to_bool (Json.field "q0_in_q_a" json) <> d.Certificate.q0_in_q_a then
            stale "q0_in_q_a flag mismatch";
          if Json.to_bool (Json.field "q0_in_q_b" json) <> d.Certificate.q0_in_q_b then
            stale "q0_in_q_b flag mismatch";
          Some d)
  | other -> stale "unknown result kind %S" other

let validate_discerning_json (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ?check
    ~fingerprint ~n json : (s, o, r) Certificate.discerning_data option =
  let check =
    match check with
    | Some f -> f
    | None -> fun ~q0 ~ops_a ~ops_b -> Discerning.check_candidate (module T) ~q0 ~ops_a ~ops_b
  in
  check_common json ~property:Discerning ~fingerprint ~n;
  match Json.to_str (Json.field "result" json) with
  | "none" ->
      let declared = Json.to_int (Json.field "candidates" json) in
      let live = candidate_count (module T) n in
      if declared <> live then
        stale "candidate space changed: file exhausted %d, live enumeration has %d" declared live;
      None
  | "witness" ->
      let dq0 =
        decode_index "dq0" T.candidate_initial_states (Json.to_int (Json.field "dq0" json))
      in
      let procs =
        List.map
          (fun p ->
            match Json.to_list p with
            | [ t; i ] ->
                let team =
                  match Json.to_int t with
                  | 0 -> Team.A
                  | 1 -> Team.B
                  | k -> stale "team tag %d is not 0 or 1" k
                in
                (team, decode_index "op" T.update_ops (Json.to_int i))
            | _ -> stale "malformed process entry")
          (Json.to_list (Json.field "procs" json))
      in
      if List.length procs <> n then stale "process count does not match n=%d" n;
      let team_ops team =
        List.filter_map (fun (t, op) -> if t = team then Some op else None) procs
      in
      let ops_a = team_ops Team.A and ops_b = team_ops Team.B in
      (match check ~q0:dq0 ~ops_a ~ops_b with
      | None -> stale "stored candidate is not a Definition 2 witness"
      | Some d ->
          (* The recomputed assignment lists team A's processes before
             team B's; a stored entry in any other order misaligns the
             per-process digests below and is rejected as stale. *)
          let check_digests field stored sets =
            let stored = List.map Json.to_str (Json.to_list stored) in
            let live = Array.to_list (Array.map hex_digest sets) in
            if stored <> live then stale "%s digest mismatch" field
          in
          check_digests "r_a" (Json.field "r_a" json) d.Certificate.r_a;
          check_digests "r_b" (Json.field "r_b" json) d.Certificate.r_b;
          Some d)
  | other -> stale "unknown result kind %S" other

let load ~dir ~property ~fingerprint ~n validate =
  let file = path ~dir ~property ~fingerprint ~n in
  if not (Sys.file_exists file) then Miss
  else
    match Json.parse (read_file file) with
    | Error _ -> Miss
    | Ok json -> (
        match validate json with
        | Some d -> Hit d
        | None -> Negative
        | exception (Stale _ | Invalid_argument _) -> Miss)

let load_recording (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~check ~dir
    ~fingerprint ~n =
  load ~dir ~property:Recording ~fingerprint ~n
    (validate_recording_json (module T) ?check ~fingerprint ~n)

let load_discerning (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~check ~dir
    ~fingerprint ~n =
  load ~dir ~property:Discerning ~fingerprint ~n
    (validate_discerning_json (module T) ?check ~fingerprint ~n)

(* {2 Maintenance (CLI: certs list / revalidate / gc)} *)

type info = {
  file : string;
  property : property;
  fingerprint : string;
  depth : int;
  n : int;
  positive : bool;
  type_hint : string;
}

type status = Valid | Stale_entry of string | Corrupt of string

let info_of_json file json =
  try
    let str f = Json.to_str (Json.field f json) in
    let int f = Json.to_int (Json.field f json) in
    if str "format" <> format_tag then Error (Printf.sprintf "unknown format tag %S" (str "format"))
    else
      let property =
        match str "property" with
        | "recording" -> Recording
        | "discerning" -> Discerning
        | p -> invalid_arg (Printf.sprintf "unknown property %S" p)
      in
      Ok
        {
          file;
          property;
          fingerprint = str "fingerprint";
          depth = int "depth";
          n = int "n";
          positive = str "result" = "witness";
          type_hint = str "type_hint";
        }
  with Invalid_argument m -> Error m

let info_of_file file =
  match (try Ok (read_file file) with Sys_error m -> Error m) with
  | Error m -> Error m
  | Ok contents -> ( match Json.parse contents with Error m -> Error m | Ok j -> info_of_json file j)

let list_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (fun f ->
           let file = Filename.concat dir f in
           (file, info_of_file file))

(* Catalogue types (plus small parametric S_n / T_n instances) whose
   behaviour matches [fingerprint] at [depth]; the certs CLI uses this
   to re-anchor an on-disk entry to a live module. *)
let resolve ~fingerprint ~depth =
  let pool =
    List.map (fun (e : Catalogue.expectation) -> e.Catalogue.ot) Catalogue.all
    @ List.concat_map
        (fun n -> [ (Catalogue.tn n).Catalogue.ot; (Catalogue.sn n).Catalogue.ot ])
        [ 2; 3; 4; 5; 6 ]
  in
  List.find_opt (fun ot -> Object_type.fingerprint_t ~depth ot = fingerprint) pool

let revalidate_info (info : info) json =
  match resolve ~fingerprint:info.fingerprint ~depth:info.depth with
  | None -> Stale_entry "no known type matches the stored fingerprint"
  | Some (Object_type.Pack (module T)) -> (
      let run () =
        match info.property with
        | Recording ->
            ignore (validate_recording_json (module T) ~fingerprint:info.fingerprint ~n:info.n json)
        | Discerning ->
            ignore (validate_discerning_json (module T) ~fingerprint:info.fingerprint ~n:info.n json)
      in
      match run () with
      | () -> Valid
      | exception Stale m -> Stale_entry m
      | exception Invalid_argument m -> Corrupt m)

let revalidate_file file =
  match (try Ok (read_file file) with Sys_error m -> Error m) with
  | Error m -> Corrupt m
  | Ok contents -> (
      match Json.parse contents with
      | Error m -> Corrupt m
      | Ok json -> (
          match info_of_json file json with
          | Error m -> Corrupt m
          | Ok info -> revalidate_info info json))

let gc dir =
  List.filter_map
    (fun (file, _) ->
      match revalidate_file file with
      | Valid -> None
      | Stale_entry m | Corrupt m ->
          Sys.remove file;
          Some (file, m))
    (list_dir dir)
