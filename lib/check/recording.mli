(** Decision procedure for the n-recording property (Definition 4 of the
    paper).

    A deterministic type T is n-recording if there exist a state [q0], a
    partition of n processes into two non-empty teams A and B, and
    operations op_1, ..., op_n such that
    + Q_A and Q_B are disjoint,
    + [q0] is not in Q_A, or |B| = 1,
    + [q0] is not in Q_B, or |A| = 1.

    The search enumerates candidate initial states, team sizes (up to the
    team-swap symmetry) and operation multisets per team, deciding each
    candidate exactly by computing Q_A and Q_B.  Answers are exact with
    respect to the type's declared finite operation universe. *)

val check_candidate :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  q0:'s ->
  ops_a:'o list ->
  ops_b:'o list ->
  ('s, 'o) Certificate.recording_data option
(** Decide one candidate assignment; [Some data] iff it satisfies all
    three conditions of Definition 4. *)

val witness : ?domains:int -> Rcons_spec.Object_type.t -> int -> Certificate.recording option
(** [witness t n]: a certificate that [t] is n-recording, or [None] if
    no candidate over the declared universes satisfies Definition 4.
    [?domains] fans the candidate sweep out across that many OCaml 5
    domains (default 1 = sequential); the certificate returned is the
    first in enumeration order regardless of [domains]
    ({!Rcons_par.Pool.find_first}'s determinism contract).
    @raise Invalid_argument if [n < 2]. *)

val is_recording : ?domains:int -> Rcons_spec.Object_type.t -> int -> bool
(** [Option.is_some] of {!witness}. *)
