(** Decision procedure for the n-recording property (Definition 4 of the
    paper).

    A deterministic type T is n-recording if there exist a state [q0], a
    partition of n processes into two non-empty teams A and B, and
    operations op_1, ..., op_n such that
    + Q_A and Q_B are disjoint,
    + [q0] is not in Q_A, or |B| = 1,
    + [q0] is not in Q_B, or |A| = 1.

    The search enumerates candidate initial states, team sizes (up to the
    team-swap symmetry) and operation multisets per team, deciding each
    candidate exactly by computing Q_A and Q_B.  Answers are exact with
    respect to the type's declared finite operation universe. *)

(** Per-type incremental scanner: one memoized {!Search.Make} instance
    shared across every candidate and every level, so overlapping
    sub-searches (A-first/B-first of one candidate, candidates across
    levels) are computed once.  {!Classify} and the certificate cache
    instantiate it once per type. *)
module Scan (T : Rcons_spec.Object_type.S) : sig
  val check :
    q0:T.state ->
    ops_a:T.op list ->
    ops_b:T.op list ->
    (T.state, T.op) Certificate.recording_data option
  (** Decide one candidate assignment; [Some data] iff it satisfies all
      three conditions of Definition 4. *)

  val candidates : int -> (T.state * T.op list * T.op list) list
  (** The level-n candidate space ({!Enumerate.candidates} over the
      type's declared universes). *)

  val witness_at :
    ?domains:int ->
    ?seed:(T.state, T.op) Certificate.recording_data ->
    int ->
    (T.state, T.op) Certificate.recording_data option
  (** First witness in enumeration order, or [None].  [?seed] prepends
      one-operation extensions of a lower-level witness to the
      enumeration; seeding can change which witness is found first,
      never whether one exists.
      @raise Invalid_argument if [n < 2]. *)
end

val check_candidate :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  q0:'s ->
  ops_a:'o list ->
  ops_b:'o list ->
  ('s, 'o) Certificate.recording_data option
(** Decide one candidate assignment; [Some data] iff it satisfies all
    three conditions of Definition 4.  Standalone form (fresh search
    instance per call); sweeps should go through {!Scan}. *)

val witness : ?domains:int -> Rcons_spec.Object_type.t -> int -> Certificate.recording option
(** [witness t n]: a certificate that [t] is n-recording, or [None] if
    no candidate over the declared universes satisfies Definition 4.
    [?domains] fans the candidate sweep out across that many OCaml 5
    domains (default 1 = sequential); the certificate returned is the
    first in enumeration order regardless of [domains]
    ({!Rcons_par.Pool.find_first}'s determinism contract).
    @raise Invalid_argument if [n < 2]. *)

val is_recording : ?domains:int -> Rcons_spec.Object_type.t -> int -> bool
(** [Option.is_some] of {!witness}. *)
