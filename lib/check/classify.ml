(* Classification of object types in the two hierarchies.

   For a deterministic readable type T, with respect to its declared
   operation universe:
   - cons(T) = max n such that T is n-discerning (Theorem 3, exact);
   - rcons(T) is k or k+1 where k = max n such that T is n-recording
     (Theorems 8 and 14).

   Both properties are downward closed (Observation 6 and its analogue for
   the discerning property: drop one process from a team of size >= 2), so
   the maxima are found by scanning n upwards until the first failure.  A
   type passing at [limit] is reported as [At_least limit]; no finite
   procedure can distinguish "large" from "infinite" for arbitrary types. *)

open Rcons_spec

type level = Finite of int | At_least of int

let pp_level ppf = function
  | Finite n -> Format.pp_print_int ppf n
  | At_least n -> Format.fprintf ppf ">=%d" n

let equal_level a b = a = b

(* Largest n in [2, limit] satisfying [prop], scanning upwards.  A type
   that is not even 2-recording/2-discerning sits at level 1: one process
   can always decide alone. *)
let max_level ~limit prop =
  if limit < 2 then invalid_arg "Classify.max_level: limit must be >= 2";
  let rec scan n = if n > limit then At_least limit else if prop n then scan (n + 1) else Finite (n - 1)
  in
  scan 2

let max_discerning ?domains ?(limit = 8) ot =
  max_level ~limit (Discerning.is_discerning ?domains ot)

let max_recording ?domains ?(limit = 8) ot =
  max_level ~limit (Recording.is_recording ?domains ot)

(* Interval [lower, upper] with [upper = None] meaning "no finite upper
   bound established". *)
type bounds = { lower : int; upper : int option }

let pp_bounds ppf { lower; upper } =
  match upper with
  | Some u when u = lower -> Format.pp_print_int ppf lower
  | Some u -> Format.fprintf ppf "[%d,%d]" lower u
  | None -> Format.fprintf ppf ">=%d" lower

(* The characterizations tie the structural levels to consensus numbers
   only for readable types: Theorem 3 (cons) and Theorems 8/14 (rcons) all
   use the READ operation in at least one direction, except for the upper
   bound of Theorem 14 which holds unconditionally.  For non-readable types
   (the paper's stack and queue, test-and-set) the intervals below are
   therefore [None]; their rcons is settled by the valency analysis of
   Appendix H instead. *)
(* Pure derivations from already-computed levels, so that callers (and
   [classify] in particular) run each exhaustive scan exactly once. *)
let cons_bounds_of ~readable discerning =
  if not readable then None
  else
    match discerning with
    | Finite n -> Some { lower = n; upper = Some n }
    | At_least n -> Some { lower = n; upper = None }

let rcons_bounds_of ~readable ~discerning recording =
  if not readable then None
  else
    let cons_upper =
      match cons_bounds_of ~readable discerning with Some { upper; _ } -> upper | None -> None
    in
    match recording with
    | Finite k ->
        (* Theorem 8: a readable k-recording type has rcons >= k.
           Theorem 14: not (k+1)-recording => RC unsolvable for k+2, so
           rcons <= k+1.  Corollary 17: rcons <= cons. *)
        let upper =
          match cons_upper with Some c -> min (k + 1) c | None -> k + 1
        in
        Some { lower = max 1 k; upper = Some (max 1 upper) }
    | At_least k -> Some { lower = k; upper = None }

let cons_bounds ?domains ?limit ot =
  cons_bounds_of ~readable:(Object_type.readable ot) (max_discerning ?domains ?limit ot)

let rcons_bounds ?domains ?limit ot =
  let readable = Object_type.readable ot in
  if not readable then None
  else
    let discerning = max_discerning ?domains ?limit ot in
    rcons_bounds_of ~readable ~discerning (max_recording ?domains ?limit ot)

type report = {
  type_name : string;
  is_readable : bool;
  discerning : level;
  recording : level;
  cons : bounds option; (* None: characterization inapplicable (not readable) *)
  rcons : bounds option;
}

(* One discerning scan and one recording scan per report; the bounds are
   pure derivations of the levels.  (An earlier version re-ran the
   discerning scan three times and the recording scan twice per call.) *)
let classify ?domains ?limit ot =
  let readable = Object_type.readable ot in
  let discerning = max_discerning ?domains ?limit ot in
  let recording = max_recording ?domains ?limit ot in
  {
    type_name = Object_type.name ot;
    is_readable = readable;
    discerning;
    recording;
    cons = cons_bounds_of ~readable discerning;
    rcons = rcons_bounds_of ~readable ~discerning recording;
  }

let pp_bounds_option ppf = function
  | None -> Format.pp_print_string ppf "n/a"
  | Some b -> pp_bounds ppf b

let pp_report ppf r =
  let str pp v = Format.asprintf "%a" pp v in
  Format.fprintf ppf "%-20s readable=%-5b discerning=%-5s recording=%-5s cons=%-7s rcons=%s"
    r.type_name r.is_readable
    (str pp_level r.discerning)
    (str pp_level r.recording)
    (str pp_bounds_option r.cons)
    (str pp_bounds_option r.rcons)
