(* Classification of object types in the two hierarchies.

   For a deterministic readable type T, with respect to its declared
   operation universe:
   - cons(T) = max n such that T is n-discerning (Theorem 3, exact);
   - rcons(T) is k or k+1 where k = max n such that T is n-recording
     (Theorems 8 and 14).

   Both properties are downward closed (Observation 6 and its analogue for
   the discerning property: drop one process from a team of size >= 2), so
   the maxima are found by scanning n upwards until the first failure.  A
   type passing at [limit] is reported as [At_least limit]; no finite
   procedure can distinguish "large" from "infinite" for arbitrary types. *)

open Rcons_spec

type level = Finite of int | At_least of int

let pp_level ppf = function
  | Finite n -> Format.pp_print_int ppf n
  | At_least n -> Format.fprintf ppf ">=%d" n

let equal_level a b = a = b

(* Largest n in [2, limit] satisfying [prop], scanning upwards.  A type
   that is not even 2-recording/2-discerning sits at level 1: one process
   can always decide alone. *)
let max_level ~limit prop =
  if limit < 2 then invalid_arg "Classify.max_level: limit must be >= 2";
  let rec scan n = if n > limit then At_least limit else if prop n then scan (n + 1) else Finite (n - 1)
  in
  scan 2

(* Depth of the behavioural fingerprint used as the cache key: deep
   enough to pin every sequence the level-<=limit searches can explore,
   never shallower than the default so small-limit and default runs
   share keys whenever they can. *)
let cert_depth ~limit = max 8 limit

(* Both scans below are incremental: one memoized search instance per
   type (the [Scan] functors) lives across all levels, and the level-n
   witness seeds the level-(n+1) enumeration with its one-operation
   extensions (the converse direction of Observation 6's downward
   closure).  With a cache key [(dir, fingerprint, depth)], each level
   is first looked up in the persisted cache; the cache layer
   revalidates entries through the scan's own (warm) [check] before
   trusting them, and every recomputed level is written back. *)
let scan_discerning (type s o r) ?domains ~limit ~cache
    (module T : Object_type.S with type state = s and type op = o and type resp = r) =
  let module Sc = Discerning.Scan (T) in
  let seed = ref None in
  let witness_at n =
    match cache with
    | None -> Sc.witness_at ?domains ?seed:!seed n
    | Some (dir, fp, depth) -> (
        match
          Cert_cache.load_discerning (module T) ~check:(Some Sc.check) ~dir ~fingerprint:fp ~n
        with
        | Cert_cache.Hit d -> Some d
        | Cert_cache.Negative -> None
        | Cert_cache.Miss ->
            let r = Sc.witness_at ?domains ?seed:!seed n in
            Cert_cache.store_discerning (module T) ~dir ~fingerprint:fp ~depth ~n r;
            r)
  in
  max_level ~limit (fun n ->
      match witness_at n with
      | Some d ->
          seed := Some d;
          true
      | None -> false)

let scan_recording (type s o r) ?domains ~limit ~cache
    (module T : Object_type.S with type state = s and type op = o and type resp = r) =
  let module Sc = Recording.Scan (T) in
  let seed = ref None in
  let witness_at n =
    match cache with
    | None -> Sc.witness_at ?domains ?seed:!seed n
    | Some (dir, fp, depth) -> (
        match
          Cert_cache.load_recording (module T) ~check:(Some Sc.check) ~dir ~fingerprint:fp ~n
        with
        | Cert_cache.Hit d -> Some d
        | Cert_cache.Negative -> None
        | Cert_cache.Miss ->
            let r = Sc.witness_at ?domains ?seed:!seed n in
            Cert_cache.store_recording (module T) ~dir ~fingerprint:fp ~depth ~n r;
            r)
  in
  max_level ~limit (fun n ->
      match witness_at n with
      | Some d ->
          seed := Some d;
          true
      | None -> false)

let cache_key (type s o r) ~limit certs
    (module T : Object_type.S with type state = s and type op = o and type resp = r) =
  Option.map
    (fun dir ->
      let depth = cert_depth ~limit in
      (dir, Object_type.fingerprint ~depth (module T), depth))
    certs

let max_discerning ?domains ?(limit = 8) ?certs ot =
  match ot with
  | Object_type.Pack (module T) ->
      scan_discerning ?domains ~limit ~cache:(cache_key ~limit certs (module T)) (module T)

let max_recording ?domains ?(limit = 8) ?certs ot =
  match ot with
  | Object_type.Pack (module T) ->
      scan_recording ?domains ~limit ~cache:(cache_key ~limit certs (module T)) (module T)

(* Interval [lower, upper] with [upper = None] meaning "no finite upper
   bound established". *)
type bounds = { lower : int; upper : int option }

let pp_bounds ppf { lower; upper } =
  match upper with
  | Some u when u = lower -> Format.pp_print_int ppf lower
  | Some u -> Format.fprintf ppf "[%d,%d]" lower u
  | None -> Format.fprintf ppf ">=%d" lower

(* The characterizations tie the structural levels to consensus numbers
   only for readable types: Theorem 3 (cons) and Theorems 8/14 (rcons) all
   use the READ operation in at least one direction, except for the upper
   bound of Theorem 14 which holds unconditionally.  For non-readable types
   (the paper's stack and queue, test-and-set) the intervals below are
   therefore [None]; their rcons is settled by the valency analysis of
   Appendix H instead. *)
(* Pure derivations from already-computed levels, so that callers (and
   [classify] in particular) run each exhaustive scan exactly once. *)
let cons_bounds_of ~readable discerning =
  if not readable then None
  else
    match discerning with
    | Finite n -> Some { lower = n; upper = Some n }
    | At_least n -> Some { lower = n; upper = None }

let rcons_bounds_of ~readable ~discerning recording =
  if not readable then None
  else
    let cons_upper =
      match cons_bounds_of ~readable discerning with Some { upper; _ } -> upper | None -> None
    in
    match recording with
    | Finite k ->
        (* Theorem 8: a readable k-recording type has rcons >= k.
           Theorem 14: not (k+1)-recording => RC unsolvable for k+2, so
           rcons <= k+1.  Corollary 17: rcons <= cons. *)
        let upper =
          match cons_upper with Some c -> min (k + 1) c | None -> k + 1
        in
        Some { lower = max 1 k; upper = Some (max 1 upper) }
    | At_least k -> Some { lower = k; upper = None }

let cons_bounds ?domains ?limit ?certs ot =
  cons_bounds_of ~readable:(Object_type.readable ot) (max_discerning ?domains ?limit ?certs ot)

let rcons_bounds ?domains ?limit ?certs ot =
  let readable = Object_type.readable ot in
  if not readable then None
  else
    let discerning = max_discerning ?domains ?limit ?certs ot in
    rcons_bounds_of ~readable ~discerning (max_recording ?domains ?limit ?certs ot)

type report = {
  type_name : string;
  is_readable : bool;
  discerning : level;
  recording : level;
  cons : bounds option; (* None: characterization inapplicable (not readable) *)
  rcons : bounds option;
}

(* One discerning scan and one recording scan per report; the bounds are
   pure derivations of the levels.  (An earlier version re-ran the
   discerning scan three times and the recording scan twice per call.) *)
let classify ?domains ?(limit = 8) ?certs ot =
  let readable = Object_type.readable ot in
  (* One unpacking and one fingerprint for both property scans. *)
  let scan_both (type s o r)
      (module T : Object_type.S with type state = s and type op = o and type resp = r) =
    let cache = cache_key ~limit certs (module T) in
    ( scan_discerning ?domains ~limit ~cache (module T),
      scan_recording ?domains ~limit ~cache (module T) )
  in
  let discerning, recording =
    match ot with Object_type.Pack (module T) -> scan_both (module T)
  in
  {
    type_name = Object_type.name ot;
    is_readable = readable;
    discerning;
    recording;
    cons = cons_bounds_of ~readable discerning;
    rcons = rcons_bounds_of ~readable ~discerning recording;
  }

let pp_bounds_option ppf = function
  | None -> Format.pp_print_string ppf "n/a"
  | Some b -> pp_bounds ppf b

let pp_report ppf r =
  let str pp v = Format.asprintf "%a" pp v in
  Format.fprintf ppf "%-20s readable=%-5b discerning=%-5s recording=%-5s cons=%-7s rcons=%s"
    r.type_name r.is_readable
    (str pp_level r.discerning)
    (str pp_level r.recording)
    (str pp_bounds_option r.cons)
    (str pp_bounds_option r.rcons)
