(* Decision procedure for the n-discerning property (Definition 2, from
   Ruppert's characterization of readable types that solve consensus).

   T is n-discerning if there exist q0, a two-team partition and operations
   op_1, ..., op_n such that R_{A,j} and R_{B,j} are disjoint for every
   process j, where R_{X,j} collects the (response of op_j, final state)
   pairs over all distinct-process sequences starting with a team-X process
   and including j.

   Processes assigned the same operation on the same team have identical
   R-sets, so it suffices to check one tracked instance per distinct
   (team, operation) pair of the assignment.

   [Scan (T)] mirrors {!Recording.Scan}: one memoized search instance per
   type shared across candidates and levels, team-swap symmetry reduction
   on equal splits, and [?seed]-driven extension of the lower-level
   witness ahead of the full enumeration. *)

open Rcons_spec

module Scan (T : Object_type.S) = struct
  module S = Search.Make (T)

  let check ~q0 ~ops_a ~ops_b =
    let ms_a = S.multiset_of_list ops_a and ms_b = S.multiset_of_list ops_b in
    let tracked_instances =
      Array.to_list (Array.map (fun op -> (Team.A, op)) ms_a.S.ops)
      @ Array.to_list (Array.map (fun op -> (Team.B, op)) ms_b.S.ops)
    in
    let r_sets =
      List.map
        (fun (tracked_team, tracked_op) ->
          let r_of first =
            S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first ~tracked_team ~tracked_op
          in
          ((tracked_team, tracked_op), r_of Team.A, r_of Team.B))
        tracked_instances
    in
    let disjoint = List.for_all (fun (_, ra, rb) -> S.Pair_set.(is_empty (inter ra rb))) r_sets in
    if not disjoint then None
    else begin
      (* Expand the per-(team, op) R-sets back to per-process arrays. *)
      let procs =
        Array.of_list
          (List.map (fun op -> (Team.A, op)) ops_a @ List.map (fun op -> (Team.B, op)) ops_b)
      in
      let find_sets (team, op) =
        let _, ra, rb =
          List.find (fun ((t, o), _, _) -> t = team && T.compare_op o op = 0) r_sets
        in
        (S.Pair_set.elements ra, S.Pair_set.elements rb)
      in
      let r_a = Array.map (fun p -> fst (find_sets p)) procs in
      let r_b = Array.map (fun p -> snd (find_sets p)) procs in
      Some { Certificate.dq0 = q0; procs; r_a; r_b }
    end

  let candidates n = Enumerate.candidates ~initial_states:T.candidate_initial_states ~ops:T.update_ops n

  (* One-operation extensions of a lower-level witness (its team lists are
     recovered from the per-process assignment array). *)
  let seeded (d : (T.state, T.op, T.resp) Certificate.discerning_data) =
    let team_ops team =
      Array.to_list d.Certificate.procs
      |> List.filter_map (fun (t, op) -> if t = team then Some op else None)
    in
    let ops_a = team_ops Team.A and ops_b = team_ops Team.B in
    let cmp (a1, b1) (a2, b2) =
      let c = List.compare T.compare_op a1 a2 in
      if c <> 0 then c else List.compare T.compare_op b1 b2
    in
    List.concat_map
      (fun op ->
        [
          (List.sort T.compare_op (op :: ops_a), ops_b);
          (ops_a, List.sort T.compare_op (op :: ops_b));
        ])
      T.update_ops
    |> List.sort_uniq cmp
    |> List.map (fun (oa, ob) -> (d.Certificate.dq0, oa, ob))

  let witness_at ?domains ?seed n : (T.state, T.op, T.resp) Certificate.discerning_data option =
    if n < 2 then invalid_arg "Discerning.witness: n must be >= 2";
    let seeded_prefix = match seed with None -> [] | Some d -> seeded d in
    let all = Array.of_list (seeded_prefix @ candidates n) in
    Rcons_par.Pool.find_first ?domains (Array.length all) (fun i ->
        let q0, ops_a, ops_b = all.(i) in
        check ~q0 ~ops_a ~ops_b)
end

let check_candidate (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~q0
    ~(ops_a : o list) ~(ops_b : o list) =
  let module Sc = Scan (T) in
  Sc.check ~q0 ~ops_a ~ops_b

(* As in {!Recording.witness}, the candidate space (initial state x team
   split x operation multisets) is fanned out across [domains];
   Pool.find_first keeps the result identical to the sequential scan. *)
let witness ?domains (Object_type.Pack (module T)) n : Certificate.discerning option =
  let module Sc = Scan (T) in
  Option.map (fun d -> Certificate.Discerning ((module T), d)) (Sc.witness_at ?domains n)

let is_discerning ?domains ot n = Option.is_some (witness ?domains ot n)
