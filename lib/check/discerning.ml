(* Decision procedure for the n-discerning property (Definition 2, from
   Ruppert's characterization of readable types that solve consensus).

   T is n-discerning if there exist q0, a two-team partition and operations
   op_1, ..., op_n such that R_{A,j} and R_{B,j} are disjoint for every
   process j, where R_{X,j} collects the (response of op_j, final state)
   pairs over all distinct-process sequences starting with a team-X process
   and including j.

   Processes assigned the same operation on the same team have identical
   R-sets, so it suffices to check one tracked instance per distinct
   (team, operation) pair of the assignment. *)

open Rcons_spec

let check_candidate (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~q0
    ~(ops_a : o list) ~(ops_b : o list) =
  let module S = Search.Make (T) in
  let ms_a = S.multiset_of_list ops_a and ms_b = S.multiset_of_list ops_b in
  let tracked_instances =
    Array.to_list (Array.map (fun op -> (Team.A, op)) ms_a.S.ops)
    @ Array.to_list (Array.map (fun op -> (Team.B, op)) ms_b.S.ops)
  in
  let r_sets =
    List.map
      (fun (tracked_team, tracked_op) ->
        let r_of first =
          S.responses ~q0 ~team_a:ms_a ~team_b:ms_b ~first ~tracked_team ~tracked_op
        in
        ((tracked_team, tracked_op), r_of Team.A, r_of Team.B))
      tracked_instances
  in
  let disjoint = List.for_all (fun (_, ra, rb) -> S.Pair_set.(is_empty (inter ra rb))) r_sets in
  if not disjoint then None
  else begin
    (* Expand the per-(team, op) R-sets back to per-process arrays. *)
    let procs =
      Array.of_list
        (List.map (fun op -> (Team.A, op)) ops_a @ List.map (fun op -> (Team.B, op)) ops_b)
    in
    let find_sets (team, op) =
      let _, ra, rb =
        List.find
          (fun ((t, o), _, _) -> t = team && T.compare_op o op = 0)
          r_sets
      in
      (S.Pair_set.elements ra, S.Pair_set.elements rb)
    in
    let r_a = Array.map (fun p -> fst (find_sets p)) procs in
    let r_b = Array.map (fun p -> snd (find_sets p)) procs in
    Some { Certificate.dq0 = q0; procs; r_a; r_b }
  end

(* As in {!Recording.witness}, the candidate space (initial state x team
   split x operation multisets) is fanned out across [domains];
   Pool.find_first keeps the result identical to the sequential scan. *)
let witness ?domains (Object_type.Pack (module T)) n : Certificate.discerning option =
  if n < 2 then invalid_arg "Discerning.witness: n must be >= 2";
  let candidates =
    List.concat_map
      (fun q0 ->
        List.concat_map
          (fun (a, b) ->
            Enumerate.pairs
              (Enumerate.multisets a T.update_ops)
              (Enumerate.multisets b T.update_ops)
            |> List.map (fun (ops_a, ops_b) -> (q0, ops_a, ops_b)))
          (Enumerate.team_splits n))
      T.candidate_initial_states
    |> Array.of_list
  in
  Rcons_par.Pool.find_first ?domains (Array.length candidates) (fun i ->
      let q0, ops_a, ops_b = candidates.(i) in
      match check_candidate (module T) ~q0 ~ops_a ~ops_b with
      | Some data -> Some (Certificate.Discerning ((module T), data))
      | None -> None)

let is_discerning ?domains ot n = Option.is_some (witness ?domains ot n)
