(* Reachability searches underlying the decision procedures.

   [Make (T)] provides, for a fixed deterministic type T:
   - [reachable]: the set Q_X(q0, op_1, ..., op_n) of Definition 4 -- all
     states reachable by applying operations of *distinct* processes in
     some order, the first of which belongs to team X;
   - [responses]: the set R_{X,j} of Definition 2 -- all pairs (r, q) such
     that some sequence of distinct-process operations starting with a
     process of team X and including process j makes op_j return r and
     leaves the object in state q.

   Both searches work on the multiset abstraction: a team is a multiset of
   operations, and "distinct processes" becomes "use each multiset element
   at most once".  Sequences are prefix-closed (every prefix of a valid
   sequence is a valid sequence), so states/pairs are collected at every
   node of the search tree.

   The searches are memoized *compositionally*: the set collected below a
   node depends only on (current state, remaining operation multisets),
   not on the path that reached it, so each node's set is computed once
   and cached in tables that live for the lifetime of the [Make (T)]
   instance.  Because the two teams are interchangeable once the first
   operation has been applied, the cache key sorts the two remaining
   multisets -- the A-first and B-first searches of one candidate, and
   overlapping candidates across scan levels, share every common
   sub-search.  Callers that check many candidates (the witness scans of
   {!Recording} / {!Discerning} and the incremental level scans of
   {!Classify}) instantiate [Make (T)] once and reuse it; the tables are
   mutex-guarded so the parallel candidate sweeps of
   {!Rcons_par.Pool.find_first} may share an instance. *)

module Make (T : Rcons_spec.Object_type.S) = struct
  module State_set = Set.Make (struct
    type t = T.state

    let compare = T.compare_state
  end)

  module Pair_set = Set.Make (struct
    type t = T.resp * T.state

    let compare (r1, s1) (r2, s2) =
      let c = T.compare_resp r1 r2 in
      if c <> 0 then c else T.compare_state s1 s2
  end)

  (* A team's operations with multiplicities.  [ops] holds the distinct
     operations; [counts] the number of processes assigned each one. *)
  type multiset = { ops : T.op array; counts : int array }

  (* Group the sorted list in one linear pass: each element either extends
     the current run or starts a new one.  (An earlier version re-ran
     [List.partition] per distinct operation, which was quadratic.) *)
  let multiset_of_list ops =
    let sorted = List.sort T.compare_op ops in
    let rec group acc = function
      | [] -> List.rev acc
      | op :: rest -> (
          match acc with
          | (o, c) :: tl when T.compare_op o op = 0 -> group ((o, c + 1) :: tl) rest
          | _ -> group ((op, 1) :: acc) rest)
    in
    let grouped = group [] sorted in
    { ops = Array.of_list (List.map fst grouped); counts = Array.of_list (List.map snd grouped) }

  let total ms = Array.fold_left ( + ) 0 ms.counts

  let dec counts i =
    let counts = Array.copy counts in
    counts.(i) <- counts.(i) - 1;
    counts

  (* --- memo tables --- *)

  (* Canonical encoding of a search node.  The remaining multisets are
     rendered as "op-digest:count" runs (zero counts dropped) and the two
     teams' renderings are sorted, because below the first operation the
     searches treat the teams symmetrically. *)
  let ms_key ops_digests counts =
    let b = Buffer.create 32 in
    Array.iteri
      (fun i c -> if c > 0 then Buffer.add_string b (Printf.sprintf "%s:%d;" ops_digests.(i) c))
      counts;
    Buffer.contents b

  let node_key ~state_d ka kb extra =
    let lo, hi = if ka <= kb then (ka, kb) else (kb, ka) in
    String.concat "|" [ state_d; lo; hi; extra ]

  let op_digests ms = Array.map (fun op -> Digest.to_hex (Digest.string (Rcons_spec.Object_type.digest op))) ms.ops

  let memo_lock = Mutex.create ()
  let reach_tbl : (string, State_set.t) Hashtbl.t = Hashtbl.create 256
  let resp_tbl : (string, Pair_set.t) Hashtbl.t = Hashtbl.create 256
  let hits = Atomic.make 0
  let misses = Atomic.make 0

  let memo_hits () = Atomic.get hits
  let memo_misses () = Atomic.get misses

  let with_lock f =
    Mutex.lock memo_lock;
    let r = f () in
    Mutex.unlock memo_lock;
    r

  let memoized tbl key compute =
    match with_lock (fun () -> Hashtbl.find_opt tbl key) with
    | Some v ->
        Atomic.incr hits;
        v
    | None ->
        Atomic.incr misses;
        let v = compute () in
        with_lock (fun () -> if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v);
        v

  (* Q_X: states reachable when the first operation comes from [first] and
     subsequent operations come from what remains of [first] and [other].
     [collect s ca cb] is the set of states collected at and below the
     node (s, ca, cb); it is independent of which team each multiset
     represents, so the memo key may sort them. *)
  let reachable ~q0 ~(first : multiset) ~(other : multiset) =
    let da = op_digests first and db = op_digests other in
    let rec collect s ca cb =
      let key = node_key ~state_d:(T.digest_state s) (ms_key da ca) (ms_key db cb) "" in
      memoized reach_tbl key (fun () ->
          let acc = ref (State_set.singleton s) in
          Array.iteri
            (fun i c ->
              if c > 0 then
                let s', _ = T.apply s first.ops.(i) in
                acc := State_set.union !acc (collect s' (dec ca i) cb))
            ca;
          Array.iteri
            (fun i c ->
              if c > 0 then
                let s', _ = T.apply s other.ops.(i) in
                acc := State_set.union !acc (collect s' ca (dec cb i)))
            cb;
          !acc)
    in
    let found = ref State_set.empty in
    Array.iteri
      (fun i op ->
        if first.counts.(i) > 0 then
          let s', _ = T.apply q0 op in
          found := State_set.union !found (collect s' (dec first.counts i) (Array.copy other.counts)))
      first.ops;
    !found

  (* R_{X,j} where process j is one instance of operation [tracked_op] on
     team [tracked_team].  [team_a]/[team_b] are the full team multisets
     (including the tracked instance, which is removed here); [first] names
     the team X whose member must move first. *)
  let responses ~q0 ~(team_a : multiset) ~(team_b : multiset) ~first
      ~(tracked_team : Rcons_spec.Team.t) ~(tracked_op : T.op) =
    let remove_tracked ms =
      let idx = ref (-1) in
      Array.iteri (fun i op -> if T.compare_op op tracked_op = 0 then idx := i) ms.ops;
      if !idx < 0 || ms.counts.(!idx) = 0 then
        invalid_arg "Search.responses: tracked operation not in its team";
      { ms with counts = dec ms.counts !idx }
    in
    let ta, tb =
      match tracked_team with
      | Rcons_spec.Team.A -> (remove_tracked team_a, team_b)
      | Rcons_spec.Team.B -> (team_a, remove_tracked team_b)
    in
    let da = op_digests ta and db = op_digests tb in
    let tracked_d = Digest.to_hex (Digest.string (Rcons_spec.Object_type.digest tracked_op)) in
    (* [tracked] = None while op_j has not been applied; Some r afterwards.
       [collect s ca cb tracked] is the pair set at and below the node. *)
    let rec collect s ca cb tracked =
      let extra =
        match tracked with
        | None -> tracked_d ^ "?"
        | Some r -> tracked_d ^ "!" ^ Digest.to_hex (Digest.string (Rcons_spec.Object_type.digest r))
      in
      let key = node_key ~state_d:(T.digest_state s) (ms_key da ca) (ms_key db cb) extra in
      memoized resp_tbl key (fun () ->
          let acc =
            ref (match tracked with Some r -> Pair_set.singleton (r, s) | None -> Pair_set.empty)
          in
          Array.iteri
            (fun i c ->
              if c > 0 then
                let s', _ = T.apply s ta.ops.(i) in
                acc := Pair_set.union !acc (collect s' (dec ca i) cb tracked))
            ca;
          Array.iteri
            (fun i c ->
              if c > 0 then
                let s', _ = T.apply s tb.ops.(i) in
                acc := Pair_set.union !acc (collect s' ca (dec cb i) tracked))
            cb;
          (match tracked with
          | None ->
              let s', r = T.apply s tracked_op in
              acc := Pair_set.union !acc (collect s' ca cb (Some r))
          | Some _ -> ());
          !acc)
    in
    let found = ref Pair_set.empty in
    (* First step: a process of team [first] moves, which is either a
       regular instance of that team's multiset or the tracked process when
       it belongs to team [first]. *)
    let start_regular ms ms_counts other_counts flip =
      Array.iteri
        (fun i op ->
          if ms.counts.(i) > 0 then
            let s', _ = T.apply q0 op in
            let set =
              if flip then collect s' (Array.copy other_counts) (dec ms_counts i) None
              else collect s' (dec ms_counts i) (Array.copy other_counts) None
            in
            found := Pair_set.union !found set)
        ms.ops
    in
    (match first with
    | Rcons_spec.Team.A -> start_regular ta ta.counts tb.counts false
    | Rcons_spec.Team.B -> start_regular tb tb.counts ta.counts true);
    if tracked_team = first then begin
      let s', r = T.apply q0 tracked_op in
      found :=
        Pair_set.union !found (collect s' (Array.copy ta.counts) (Array.copy tb.counts) (Some r))
    end;
    !found
end
