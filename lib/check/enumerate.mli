(** Enumeration helpers for the property-checker searches.

    Both Q_X (Definition 4) and R_{X,j} (Definition 2) depend only on the
    multiset of operations assigned to each team -- process indices enter
    the definitions only through "each process appears at most once" --
    so enumerating multisets instead of per-process vectors is an
    exponential symmetry reduction with the same answer (checked against
    brute-force vector enumeration in the test suite). *)

val multisets : int -> 'a list -> 'a list list
(** [multisets k universe]: all multisets of size [k] over [universe],
    each represented as a list; there are C(|universe| + k - 1, k). *)

val team_splits : int -> (int * int) list
(** [team_splits n]: the splits of [n] processes into two non-empty team
    sizes [(a, b)] with [a <= b].  Ordered splits with [a > b] are
    redundant because Definitions 2 and 4 are team-swap invariant. *)

val pairs : 'a list -> 'b list -> ('a * 'b) list
(** Cartesian product, in order. *)

val sym_pairs : 'a list -> ('a * 'a) list
(** [sym_pairs xs]: the pairs [(x_i, x_j)] with [i <= j], in row-major
    order.  Used for equal team splits, where Definitions 2 and 4 are
    invariant under exchanging the two teams' multisets: the mirror of
    any valid pair is valid, so a first-match search over this reduced
    enumeration returns the same witness as over the full square. *)

val candidate_count : initial_states:'s list -> ops:'o list -> int -> int
(** [List.length (candidates ~initial_states ~ops n)] computed
    arithmetically (no list is built); the certificate cache validates
    negative entries against it. *)

val candidates :
  initial_states:'s list -> ops:'o list -> int -> ('s * 'o list * 'o list) list
(** [candidates ~initial_states ~ops n]: the canonical level-n candidate
    space [(q0, team-A multiset, team-B multiset)] shared by both
    decision procedures and by the certificate cache's negative-entry
    revalidation (which must agree with the procedures on the
    enumeration's shape). *)
