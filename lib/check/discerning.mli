(** Decision procedure for the n-discerning property (Definition 2 of
    the paper, from Ruppert's characterization of the readable types that
    solve n-process consensus, Theorem 3).

    T is n-discerning if there exist [q0], a two-team partition and
    operations op_1, ..., op_n such that R_{A,j} and R_{B,j} are disjoint
    for every process j, where R_{X,j} collects the (response of op_j,
    final state) pairs over all distinct-process sequences that start
    with a team-X process and include j.  Processes assigned the same
    operation on the same team have identical R-sets, so one tracked
    instance per distinct (team, operation) suffices. *)

(** Per-type incremental scanner, mirroring {!Recording.Scan}: one
    memoized {!Search.Make} instance shared across every candidate and
    every level. *)
module Scan (T : Rcons_spec.Object_type.S) : sig
  val check :
    q0:T.state ->
    ops_a:T.op list ->
    ops_b:T.op list ->
    (T.state, T.op, T.resp) Certificate.discerning_data option
  (** Decide one candidate assignment; [Some data] iff every tracked
      process has disjoint R-sets (Definition 2). *)

  val candidates : int -> (T.state * T.op list * T.op list) list
  (** The level-n candidate space ({!Enumerate.candidates} over the
      type's declared universes). *)

  val witness_at :
    ?domains:int ->
    ?seed:(T.state, T.op, T.resp) Certificate.discerning_data ->
    int ->
    (T.state, T.op, T.resp) Certificate.discerning_data option
  (** First witness in enumeration order, or [None].  [?seed] prepends
      one-operation extensions of a lower-level witness; seeding can
      change which witness is found first, never whether one exists.
      @raise Invalid_argument if [n < 2]. *)
end

val check_candidate :
  (module Rcons_spec.Object_type.S with type state = 's and type op = 'o and type resp = 'r) ->
  q0:'s ->
  ops_a:'o list ->
  ops_b:'o list ->
  ('s, 'o, 'r) Certificate.discerning_data option
(** Decide one candidate assignment; [Some data] iff every tracked
    process has disjoint R-sets (Definition 2).  Standalone form (fresh
    search instance per call); sweeps should go through {!Scan}. *)

val witness : ?domains:int -> Rcons_spec.Object_type.t -> int -> Certificate.discerning option
(** [witness t n]: a certificate that [t] is n-discerning, or [None].
    [?domains] fans the candidate sweep out across that many OCaml 5
    domains (default 1 = sequential) without changing which certificate
    is returned.
    @raise Invalid_argument if [n < 2]. *)

val is_discerning : ?domains:int -> Rcons_spec.Object_type.t -> int -> bool
(** [Option.is_some] of {!witness}. *)
