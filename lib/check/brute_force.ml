(* Oracle implementations of Definitions 2 and 4 by literal enumeration,
   with no multiset symmetry reduction and no memoized search: every
   ordered assignment of operations to processes, every team partition
   containing process 1, and every permutation of every subset of
   processes is enumerated directly from the text of the definitions.

   Exponentially slower than the production checkers, but independent:
   the property-based tests compare the two on random small types, which
   guards the symmetry arguments (teams as multisets, team-swap
   invariance, prefix closure) actually used by the fast code. *)

open Rcons_spec

(* All ordered sequences of distinct elements from [xs] (all subsets, all
   orders), including the empty sequence. *)
let rec arrangements xs =
  [] :: List.concat_map (fun x -> List.map (fun rest -> x :: rest) (arrangements (List.filter (( <> ) x) xs))) xs

(* All assignments of one operation from [ops] to each of [n] processes. *)
let rec assignments n ops =
  if n = 0 then [ [] ]
  else List.concat_map (fun op -> List.map (fun rest -> op :: rest) (assignments (n - 1) ops)) ops

(* All ways to choose team A as a non-empty proper subset of 0..n-1. *)
let partitions n =
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun sub -> x :: sub) s
  in
  subsets (List.init n Fun.id)
  |> List.filter (fun a -> a <> [] && List.length a < n)

let run_sequence (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) q0 ops =
  List.fold_left (fun q op -> fst (T.apply q op)) q0 ops

(* Q_X by the letter of Definition 4. *)
let q_set (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~q0
    ~(ops : o array) ~(team_x : int list) =
  let n = Array.length ops in
  arrangements (List.init n Fun.id)
  |> List.filter (fun seq -> match seq with [] -> false | i :: _ -> List.mem i team_x)
  |> List.map (fun seq -> run_sequence (module T) q0 (List.map (fun i -> ops.(i)) seq))

let mem_state (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) q qs =
  List.exists (fun q' -> T.compare_state q q' = 0) qs

(* The outer candidate space (initial state x ordered assignment) shared
   by both oracles, as an array so that the sweep can be fanned out
   across domains.  Existence is order-independent, so parallelizing a
   boolean [exists] is trivially deterministic. *)
let outer_candidates (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) n =
  List.concat_map
    (fun q0 -> List.map (fun ops_list -> (q0, Array.of_list ops_list)) (assignments n T.update_ops))
    T.candidate_initial_states
  |> Array.of_list

(* Definition 4, literally. *)
let is_recording ?domains (Object_type.Pack (module T)) n =
  if n < 2 then invalid_arg "Brute_force.is_recording";
  let candidates = outer_candidates (module T) n in
  Rcons_par.Pool.exists ?domains (Array.length candidates) (fun ci ->
      let q0, ops = candidates.(ci) in
      List.exists
        (fun team_a ->
          let team_b = List.filter (fun i -> not (List.mem i team_a)) (List.init n Fun.id) in
          let q_a = q_set (module T) ~q0 ~ops ~team_x:team_a in
          let q_b = q_set (module T) ~q0 ~ops ~team_x:team_b in
          let disjoint = not (List.exists (fun q -> mem_state (module T) q q_b) q_a) in
          let cond2 = (not (mem_state (module T) q0 q_a)) || List.length team_b = 1 in
          let cond3 = (not (mem_state (module T) q0 q_b)) || List.length team_a = 1 in
          disjoint && cond2 && cond3)
        (partitions n))

(* R_{X,j} by the letter of Definition 2. *)
let r_set (type s o r)
    (module T : Object_type.S with type state = s and type op = o and type resp = r) ~q0
    ~(ops : o array) ~(team_x : int list) ~j =
  let n = Array.length ops in
  arrangements (List.init n Fun.id)
  |> List.filter (fun seq ->
         (match seq with [] -> false | i :: _ -> List.mem i team_x) && List.mem j seq)
  |> List.map (fun seq ->
         let resp_j = ref None in
         let final =
           List.fold_left
             (fun q i ->
               let q', r = T.apply q ops.(i) in
               if i = j then resp_j := Some r;
               q')
             q0 seq
         in
         (Option.get !resp_j, final))

(* Definition 2, literally. *)
let is_discerning ?domains (Object_type.Pack (module T)) n =
  if n < 2 then invalid_arg "Brute_force.is_discerning";
  let mem_pair (r, q) pairs =
    List.exists (fun (r', q') -> T.compare_resp r r' = 0 && T.compare_state q q' = 0) pairs
  in
  let candidates = outer_candidates (module T) n in
  Rcons_par.Pool.exists ?domains (Array.length candidates) (fun ci ->
      let q0, ops = candidates.(ci) in
      List.exists
        (fun team_a ->
          let team_b = List.filter (fun i -> not (List.mem i team_a)) (List.init n Fun.id) in
          List.for_all
            (fun j ->
              let r_a = r_set (module T) ~q0 ~ops ~team_x:team_a ~j in
              let r_b = r_set (module T) ~q0 ~ops ~team_x:team_b ~j in
              not (List.exists (fun p -> mem_pair p r_b) r_a))
            (List.init n Fun.id))
        (partitions n))
