(** Reachability searches underlying the decision procedures: the sets
    Q_X of Definition 4 and R_{X,j} of Definition 2, computed on the
    multiset abstraction of team assignments (see {!Enumerate}).

    Sequences of distinct-process operations are prefix-closed, so
    states/pairs are collected at every node of the search tree.  The
    set collected below a node depends only on (state, remaining
    multisets), so each node is computed once and cached in tables that
    live for the lifetime of the [Make] instance: candidate checks that
    share sub-searches (the A-first/B-first pair of one candidate, and
    overlapping candidates across levels of an incremental scan) reuse
    each other's work when the caller reuses the instance.  The tables
    are mutex-guarded; sharing an instance across the parallel candidate
    sweeps of {!Rcons_par.Pool} is safe and changes no result. *)

module Make (T : Rcons_spec.Object_type.S) : sig
  module State_set : Set.S with type elt = T.state
  module Pair_set : Set.S with type elt = T.resp * T.state

  (** A team's operations with multiplicities. *)
  type multiset = { ops : T.op array; counts : int array }

  val multiset_of_list : T.op list -> multiset
  (** Sort and group a team's operation list (one linear grouping pass
      over the [compare_op]-sorted list). *)

  val total : multiset -> int

  val memo_hits : unit -> int
  (** Number of node-level memo-table hits since the instance was
      created (across both searches); monotone, for cache-effect
      observability. *)

  val memo_misses : unit -> int
  (** Number of node-level memo-table misses (= distinct nodes
      computed). *)

  val reachable : q0:T.state -> first:multiset -> other:multiset -> State_set.t
  (** Q_X: all states reachable by applying operations of distinct
      processes in some order, the first of which belongs to team
      [first]; the remaining operations come from what is left of both
      multisets. *)

  val responses :
    q0:T.state ->
    team_a:multiset ->
    team_b:multiset ->
    first:Rcons_spec.Team.t ->
    tracked_team:Rcons_spec.Team.t ->
    tracked_op:T.op ->
    Pair_set.t
  (** R_{first, j} where process j is one instance of [tracked_op] on
      [tracked_team]: all (response of op_j, state at end of sequence)
      pairs over distinct-process sequences starting with a [first]-team
      process and including j.
      @raise Invalid_argument if the tracked operation is not present in
      its declared team. *)
end
