(** Oracle implementations of Definitions 2 and 4 by literal enumeration
    -- no multiset symmetry reduction, no memoization, every ordered
    operation assignment, every partition and every permutation of every
    subset of processes directly from the definitions' text.

    Exponentially slower than {!Recording} / {!Discerning}, but
    independent: property-based tests compare the two on random small
    types, guarding the symmetry arguments used by the fast code. *)

val is_recording : ?domains:int -> Rcons_spec.Object_type.t -> int -> bool
(** Definition 4, literally.  Use only for small n and small universes.
    [?domains] fans the (initial state, assignment) sweep across that
    many OCaml 5 domains; existence is order-independent, so the answer
    cannot depend on it.
    @raise Invalid_argument if [n < 2]. *)

val is_discerning : ?domains:int -> Rcons_spec.Object_type.t -> int -> bool
(** Definition 2, literally; same [?domains] contract as
    {!is_recording}.
    @raise Invalid_argument if [n < 2]. *)
