(* Enumeration helpers for the property-checker searches.

   Both Q_X (Definition 4) and R_{X,j} (Definition 2) depend only on the
   multiset of operations assigned to each team: process indices enter the
   definitions only through the constraint that each process appears at
   most once in a sequence.  Enumerating multisets instead of vectors is an
   exponential symmetry reduction with the same answer. *)

(* All multisets of size [k] over [universe], each as a sorted list. *)
let rec multisets k universe =
  match universe with
  | [] -> if k = 0 then [ [] ] else []
  | op :: rest ->
      let with_j j =
        let prefix = List.init j (fun _ -> op) in
        List.map (fun ms -> prefix @ ms) (multisets (k - j) rest)
      in
      List.concat_map with_j (List.init (k + 1) Fun.id)

(* Splits of [n] processes into two non-empty team sizes (a, b), a <= b.
   The properties of Definitions 2 and 4 are invariant under swapping the
   two teams, so ordered splits with a > b are redundant. *)
let team_splits n =
  let rec go a acc = if a > n - a then List.rev acc else go (a + 1) ((a, n - a) :: acc) in
  go 1 []

(* Cartesian product used when pairing the two teams' multisets. *)
let pairs xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(* Pairing a list with itself up to swapping the two components: only
   (x_i, x_j) with i <= j.  For an equal team split (a, a), Definitions 2
   and 4 are invariant under exchanging the two teams' multisets, so the
   mirrored half of the square is redundant -- and because the mirror of
   any valid pair is valid, the first valid pair in the full row-major
   square always has i <= j, so a first-match search over this reduced
   enumeration returns the same witness as one over the full square. *)
let sym_pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) (x :: rest) @ go rest
  in
  go xs

(* The shared candidate space of the witness searches at level n: every
   (initial state, team-A multiset, team-B multiset) with the team-swap
   symmetry of equal splits folded away.  Both decision procedures and the
   certificate cache's negative-entry revalidation must agree on this
   enumeration, so it lives here. *)
(* |multisets k universe| = C(|universe| + k - 1, k), computed without
   materializing the lists. *)
let multiset_count k universe_size =
  let rec binom n k = if k = 0 then 1 else binom (n - 1) (k - 1) * n / k in
  if universe_size = 0 then if k = 0 then 1 else 0
  else binom (universe_size + k - 1) k

(* |candidates ~initial_states ~ops n|, arithmetically.  The certificate
   cache validates negative entries against this count, so it must stay
   exactly [List.length (candidates ...)] (pinned by a test). *)
let candidate_count ~initial_states ~ops n =
  let u = List.length ops in
  let per_split (a, b) =
    if a = b then
      let c = multiset_count a u in
      c * (c + 1) / 2
    else multiset_count a u * multiset_count b u
  in
  List.length initial_states * List.fold_left (fun acc s -> acc + per_split s) 0 (team_splits n)

let candidates ~initial_states ~ops n =
  List.concat_map
    (fun q0 ->
      List.concat_map
        (fun (a, b) ->
          let ps =
            if a = b then sym_pairs (multisets a ops)
            else pairs (multisets a ops) (multisets b ops)
          in
          List.map (fun (ops_a, ops_b) -> (q0, ops_a, ops_b)) ps)
        (team_splits n))
    initial_states
