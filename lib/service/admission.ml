(* Bounded FIFO admission queue; see the interface. *)

type 'a t = {
  cap : int;
  q : 'a Queue.t;
  mutable admitted : int;
  mutable shed : int;
  mutable high_water : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Admission.create: cap must be >= 1";
  { cap; q = Queue.create (); admitted = 0; shed = 0; high_water = 0 }

let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q

let try_enqueue t x =
  if Queue.length t.q >= t.cap then begin
    t.shed <- t.shed + 1;
    false
  end
  else begin
    Queue.add x t.q;
    t.admitted <- t.admitted + 1;
    if Queue.length t.q > t.high_water then t.high_water <- Queue.length t.q;
    true
  end

let pop_up_to t n =
  let rec go n acc =
    if n = 0 || Queue.is_empty t.q then List.rev acc else go (n - 1) (Queue.pop t.q :: acc)
  in
  go n []

let admitted t = t.admitted
let shed t = t.shed
let high_water t = t.high_water
