(* Client-session fibers over OCaml 5 effects; see the interface. *)

type call_result = Done of int | Overloaded | Timeout
type ctx = { call : idx:int -> call_result; sleep : int -> unit }

type _ Effect.t += Call : int -> call_result Effect.t | Sleep : int -> unit Effect.t

exception Aborted

type suspension =
  | S_none
  | S_call of int * (call_result, unit) Effect.Deep.continuation
  | S_sleep of int * (unit, unit) Effect.Deep.continuation

type t = { mutable susp : suspension; mutable fin : bool; mutable run : unit -> unit }

type poised = Calling of int | Sleeping of int | Finished

let ctx = { call = (fun ~idx -> Effect.perform (Call idx)); sleep = (fun d -> if d > 0 then Effect.perform (Sleep d)) }

let spawn body =
  let s = { susp = S_none; fin = false; run = (fun () -> ()) } in
  s.run <-
    (fun () ->
      Effect.Deep.match_with body ctx
        {
          retc = (fun () -> s.fin <- true);
          exnc =
            (fun e ->
              s.fin <- true;
              match e with Aborted -> () | e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Call idx ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) -> s.susp <- S_call (idx, k))
              | Sleep d -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> s.susp <- S_sleep (d, k))
              | _ -> None);
        });
  s

let start s = s.run ()

let poised s =
  if s.fin then Finished
  else
    match s.susp with
    | S_call (idx, _) -> Calling idx
    | S_sleep (d, _) -> Sleeping d
    | S_none -> invalid_arg "Session.poised: session not suspended"

let answer s r =
  match s.susp with
  | S_call (_, k) ->
      s.susp <- S_none;
      Effect.Deep.continue k r
  | _ -> invalid_arg "Session.answer: session is not awaiting a call"

let wake s =
  match s.susp with
  | S_sleep (_, k) ->
      s.susp <- S_none;
      Effect.Deep.continue k ()
  | _ -> invalid_arg "Session.wake: session is not sleeping"

let abort s =
  if not s.fin then begin
    match s.susp with
    | S_call (_, k) ->
        s.susp <- S_none;
        Effect.Deep.discontinue k Aborted
    | S_sleep (_, k) ->
        s.susp <- S_none;
        Effect.Deep.discontinue k Aborted
    | S_none -> s.fin <- true
  end
