(** Simulated client sessions as OCaml 5 effect-handler fibers.

    A session body is direct-style client code -- submit, await, retry
    with backoff, move on -- written against the tiny {!ctx} interface;
    [call] and [sleep] perform effects, suspending the fiber until the
    hosting instance engine answers or wakes it.  Thousands of sessions
    multiplex over one engine this way with no threads and no
    scheduler fairness questions: the engine resumes exactly the fibers
    whose events fired, in deterministic (session-index) order.

    Continuations are one-shot; the engine must answer each suspension
    exactly once.  {!abort} discontinues an unfinished fiber so its
    stack is reclaimed (the same obligation {!Rcons_runtime.Sim.abandon}
    discharges for process continuations). *)

(** What an awaited operation came back with.  [Overloaded] = shed by
    admission control; [Timeout] = the per-attempt deadline passed with
    the op still in flight (the op itself remains queued or in flight --
    retries of it are deduplicated by op id). *)
type call_result = Done of int | Overloaded | Timeout

type ctx = {
  call : idx:int -> call_result;
      (** Submit (or re-submit) the session's [idx]-th operation and
          await its outcome. *)
  sleep : int -> unit;  (** Yield for at least the given number of ticks. *)
}

type t

(** What a session is suspended on, observed by the engine after every
    {!start}/{!answer}/{!wake}. *)
type poised =
  | Calling of int  (** performing [call ~idx]; answer with {!answer} *)
  | Sleeping of int  (** performing [sleep d]; {!wake} once [d] ticks pass *)
  | Finished

val spawn : (ctx -> unit) -> t
(** Package a body; nothing runs until {!start}. *)

val start : t -> unit
(** Run the body until its first suspension (or completion). *)

val poised : t -> poised

val answer : t -> call_result -> unit
(** Resume a [Calling] session with the outcome; runs it to its next
    suspension.  @raise Invalid_argument if not [Calling]. *)

val wake : t -> unit
(** Resume a [Sleeping] session.  @raise Invalid_argument if not
    [Sleeping]. *)

val abort : t -> unit
(** Discontinue an unfinished session (its pending [call]/[sleep]
    raises an internal exception the body must not catch); a no-op on a
    [Finished] one.  After [abort] the session is [Finished]. *)
