(* One hosted service shard; see the interface for the engine shape.

   Everything in here is per-instance and deterministic: private RNGs
   seeded from (seed, id), sessions resumed in index order, the
   adversary consulted once per tick, no iteration over hash tables
   whose order could leak in.  [Service] relies on that to partition
   instances across domains without changing any report. *)

open Rcons_runtime
module History = Rcons_history.History
module Linearizability = Rcons_history.Linearizability
module Conditions = Rcons_history.Conditions
module Runiversal = Rcons_universal.Runiversal
module Derived = Rcons_universal.Derived
module Rlog = Rcons_log.Rlog

exception Violation of { instance : int; tick : int; msg : string }

type kind = Universal | Log

type config = {
  id : int;
  seed : int;
  kind : kind;
  adversary : Adversary.policy;
  persist : Persist.policy;
  flush_cost : int;
  annotated : bool;
  workers : int;
  batch : int;
  queue_cap : int;
  quantum : int;
  sessions : int;
  ops_per_session : int;
  open_rate : float;
  open_ops : int;
  retry : Backoff.policy;
  check_window : int;
  slots : int;
  cert : Rcons_check.Certificate.recording option;
  max_ticks : int;
}

let max_ops cfg = (cfg.sessions * cfg.ops_per_session) + cfg.open_ops

let validate cfg =
  if cfg.workers < 1 then invalid_arg "Instance: workers must be >= 1";
  if cfg.batch < 1 then invalid_arg "Instance: batch must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Instance: queue_cap must be >= 1";
  if cfg.quantum < 1 then invalid_arg "Instance: quantum must be >= 1";
  if cfg.sessions < 0 then invalid_arg "Instance: sessions must be >= 0";
  if cfg.ops_per_session < 0 then invalid_arg "Instance: ops_per_session must be >= 0";
  if cfg.open_ops < 0 then invalid_arg "Instance: open_ops must be >= 0";
  if cfg.open_rate < 0.0 then invalid_arg "Instance: open_rate must be >= 0";
  if cfg.open_ops > 0 && cfg.open_rate <= 0.0 then
    invalid_arg "Instance: open_ops > 0 needs open_rate > 0";
  if cfg.flush_cost < 1 then invalid_arg "Instance: flush_cost must be >= 1";
  if cfg.max_ticks < 1 then invalid_arg "Instance: max_ticks must be >= 1";
  Backoff.validate cfg.retry;
  match cfg.kind with
  | Universal ->
      if cfg.check_window < 0 then invalid_arg "Instance: check_window must be >= 0";
      (* The Wing & Gong oracle is bounded at 62 operations; a window
         closes at a drain point, so it holds at most [check_window]
         trigger ops plus everything still in flight when the trigger
         fired. *)
      if cfg.check_window > 0 && cfg.check_window + (cfg.workers * cfg.batch) > 62 then
        invalid_arg "Instance: check_window + workers*batch exceeds the 62-op checker bound";
      if cfg.check_window = 0 && max_ops cfg > 62 then
        invalid_arg "Instance: check_window = 0 (final check only) needs <= 62 total ops"
  | Log -> (
      if cfg.slots < 1 then invalid_arg "Instance: slots must be >= 1";
      match cfg.cert with
      | None -> invalid_arg "Instance: Log kind requires a recording certificate"
      | Some cert ->
          let a, b = Rcons_check.Certificate.recording_teams cert in
          if (a + b) * cfg.slots > 62 then
            invalid_arg "Instance: procs * slots exceeds the 62-op checker bound")

(* --- operations --- *)

type owner = Closed of int | Open of int

(* [Failed]: a log generation retired without committing the op's slot
   (reachable only without barriers); the next retry re-admits it. *)
type op_status = Fresh | Queued | Inflight | Completed of int | Failed

type op_rec = {
  o_id : int;  (** dense per-instance id; the idempotency key *)
  o_op : Derived.counter_op;
  o_owner : owner;
  mutable o_status : op_status;
  mutable o_submit : int;  (** first-submission tick; -1 before *)
  mutable o_acked : bool;
}

type open_rec = {
  oo : op_rec;
  mutable oo_phase : int;  (** 0 = trying/backing off, 1 = awaiting, 2 = resolved *)
  mutable oo_due : int;  (** phase 0: next attempt tick; phase 1: deadline *)
  mutable oo_tries : int;
}

(* --- backends --- *)

type worker_cur = {
  mutable epoch : int;
  mutable wops : op_rec array;
  mutable next_ack : int;
  mutable marks : int list;  (** crash ticks awaiting batch completion *)
}

type universal_state = {
  u : (int, Derived.counter_op, int) Runiversal.t;
  u_hist : (Derived.counter_op, int) History.t;
  u_sim : Sim.t;
  assignment : (int * (int * Derived.counter_op) array) option Cell.t array;
  done_epoch : int Cell.t array;
  results : int option array;  (** meta-observation, filled by worker bodies *)
  cur : worker_cur array;
  mutable watermark : int;  (** highest history tag already checked *)
  mutable window_init : int;  (** counter state at the last window cut *)
  mutable ops_since_check : int;
  mutable draining : bool;
}

type generation = {
  g_log : Rlog.t;
  g_sim : Sim.t;
  g_reqs : op_rec array;  (** slot -> client op *)
  mutable g_acked : int;
  mutable g_trace : int list;  (** committed samples, newest first *)
  g_marks : int list array;  (** per-proc crash ticks awaiting body completion *)
}

type log_state = {
  l_cert : Rcons_check.Certificate.recording;
  mutable gen : generation option;
  mutable gens : int;
}

type backend = B_u of universal_state | B_l of log_state

type t = {
  cfg : config;
  mutable now : int;
  queue : op_rec Admission.t;
  sess : Session.t array;
  closed_ops : op_rec option array array;  (** session -> idx -> op *)
  waiting : op_rec option array;
  sess_deadline : int array;
  wake_at : int array;  (** -1 = not sleeping *)
  open_arr : open_rec option array;
  mutable open_gen : int;
  mutable open_acc : float;
  open_rng : Random.State.t;
  adv : Adversary.t;
  be : backend;
  mutable all_ops : op_rec list;
  mutable next_oid : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable overloads : int;
  mutable acked : int;
  mutable recoveries : int;
  mutable checks : int;
  mutable steps_acc : int;  (** retired log generations' sim steps *)
  lat : Metrics.hist;
  rec_h : Metrics.hist;
  replay_h : Metrics.hist;
  commit_buf : Buffer.t;
  mutable stuck : bool;
}

type report = {
  r_id : int;
  r_kind : string;
  r_ticks : int;
  r_sim_steps : int;
  r_submitted : int;
  r_acked : int;
  r_completed : int;
  r_completed_unacked : int;
  r_gave_up : int;
  r_retries : int;
  r_timeouts : int;
  r_overloads : int;
  r_shed : int;
  r_admitted : int;
  r_queue_high_water : int;
  r_crashes_delivered : int;
  r_crashes_requested : int;
  r_recoveries : int;
  r_checks_run : int;
  r_generations : int;
  r_stuck : bool;
  r_latency : Metrics.hist;
  r_recovery : Metrics.hist;
  r_replay : Metrics.hist;
  r_commit_trace : string;
}

let violation t msg = raise (Violation { instance = t.cfg.id; tick = t.now; msg })

let fresh_op t ~owner ~op =
  let r =
    { o_id = t.next_oid; o_op = op; o_owner = owner; o_status = Fresh; o_submit = -1; o_acked = false }
  in
  t.next_oid <- t.next_oid + 1;
  t.all_ops <- r :: t.all_ops;
  r

(* Deterministic op mix: one Get every fourth (session, idx) pair, the
   rest Incrs (log instances ignore the op payload). *)
let op_for ~ses ~idx = if (ses + idx) mod 4 = 3 then Derived.Get else Derived.Incr

let ack t r =
  r.o_acked <- true;
  t.acked <- t.acked + 1;
  Metrics.add t.lat (t.now - max 0 r.o_submit)

(* --- session plumbing --- *)

(* Answering a fiber runs client code that may immediately call again
   (e.g. the next op after a completed one), so [settle] loops until the
   session parks on a wait it cannot answer synchronously. *)
let rec settle t i =
  match Session.poised t.sess.(i) with
  | Session.Finished -> ()
  | Session.Sleeping d -> t.wake_at.(i) <- t.now + max 1 d
  | Session.Calling idx -> (
      match on_call t i idx with
      | Some r ->
          Session.answer t.sess.(i) r;
          settle t i
      | None -> ())

and on_call t i idx =
  let r =
    match t.closed_ops.(i).(idx) with
    | Some r -> r
    | None ->
        let r = fresh_op t ~owner:(Closed i) ~op:(op_for ~ses:i ~idx) in
        t.closed_ops.(i).(idx) <- Some r;
        r
  in
  match r.o_status with
  | Completed resp ->
      if not r.o_acked then ack t r;
      Some (Session.Done resp)
  | Queued | Inflight ->
      (* retry of an admitted op: idempotent -- re-arm the deadline, do
         not re-submit *)
      t.retries <- t.retries + 1;
      t.waiting.(i) <- Some r;
      t.sess_deadline.(i) <- t.now + t.cfg.retry.Backoff.deadline;
      None
  | Fresh | Failed ->
      if r.o_submit < 0 then r.o_submit <- t.now else t.retries <- t.retries + 1;
      if Admission.try_enqueue t.queue r then begin
        r.o_status <- Queued;
        t.waiting.(i) <- Some r;
        t.sess_deadline.(i) <- t.now + t.cfg.retry.Backoff.deadline;
        None
      end
      else begin
        t.overloads <- t.overloads + 1;
        Some Session.Overloaded
      end

(* The closed-loop client: submit each op, retry on Overloaded/Timeout
   with jittered exponential backoff, give up after max_retries, think
   briefly between ops. *)
let client_body cfg rng ctx =
  for idx = 0 to cfg.ops_per_session - 1 do
    let rec attempt n =
      match ctx.Session.call ~idx with
      | Session.Done _ -> ()
      | Session.Overloaded | Session.Timeout ->
          if n < cfg.retry.Backoff.max_retries then begin
            ctx.Session.sleep (Backoff.delay cfg.retry ~rng ~attempt:n);
            attempt (n + 1)
          end
    in
    attempt 0;
    ctx.Session.sleep (1 + Random.State.int rng 4)
  done

(* --- open-loop ops (seeded arrival process; no fiber, a 3-state
   machine per op sharing the same admission/dedup path) --- *)

let retry_or_give_up t oo =
  if oo.oo_tries >= t.cfg.retry.Backoff.max_retries then oo.oo_phase <- 2 (* gave up *)
  else begin
    let d = Backoff.delay t.cfg.retry ~rng:t.open_rng ~attempt:oo.oo_tries in
    oo.oo_tries <- oo.oo_tries + 1;
    oo.oo_phase <- 0;
    oo.oo_due <- t.now + d
  end

let open_act t oo =
  let r = oo.oo in
  match r.o_status with
  | Completed _ ->
      if not r.o_acked then ack t r;
      oo.oo_phase <- 2
  | Queued | Inflight ->
      if oo.oo_tries > 0 then t.retries <- t.retries + 1;
      oo.oo_phase <- 1;
      oo.oo_due <- t.now + t.cfg.retry.Backoff.deadline
  | Fresh | Failed ->
      if r.o_submit < 0 then r.o_submit <- t.now else t.retries <- t.retries + 1;
      if Admission.try_enqueue t.queue r then begin
        r.o_status <- Queued;
        oo.oo_phase <- 1;
        oo.oo_due <- t.now + t.cfg.retry.Backoff.deadline
      end
      else begin
        t.overloads <- t.overloads + 1;
        retry_or_give_up t oo
      end

let open_phase t =
  if t.cfg.open_ops > 0 then begin
    if t.open_gen < t.cfg.open_ops then begin
      t.open_acc <- t.open_acc +. t.cfg.open_rate;
      while t.open_acc >= 1.0 && t.open_gen < t.cfg.open_ops do
        t.open_acc <- t.open_acc -. 1.0;
        let j = t.open_gen in
        let r = fresh_op t ~owner:(Open j) ~op:(op_for ~ses:(-1) ~idx:j) in
        t.open_arr.(j) <- Some { oo = r; oo_phase = 0; oo_due = t.now; oo_tries = 0 };
        t.open_gen <- t.open_gen + 1
      done
    end;
    for j = 0 to t.open_gen - 1 do
      match t.open_arr.(j) with
      | Some oo when oo.oo_phase = 0 && oo.oo_due <= t.now -> open_act t oo
      | _ -> ()
    done
  end

(* --- completion delivery (shared by both backends) --- *)

let deliver_success t r resp =
  match r.o_owner with
  | Closed i -> (
      match t.waiting.(i) with
      | Some r' when r' == r ->
          t.waiting.(i) <- None;
          ack t r;
          Session.answer t.sess.(i) (Session.Done resp);
          settle t i
      | _ -> () (* client away (backing off / gave up); picked up lazily *))
  | Open j -> (
      match t.open_arr.(j) with
      | Some oo when oo.oo_phase = 1 ->
          ack t r;
          oo.oo_phase <- 2
      | _ -> ())

let deliver_failure t r =
  match r.o_owner with
  | Closed i -> (
      match t.waiting.(i) with
      | Some r' when r' == r ->
          t.waiting.(i) <- None;
          t.timeouts <- t.timeouts + 1;
          Session.answer t.sess.(i) Session.Timeout;
          settle t i
      | _ -> ())
  | Open j -> (
      match t.open_arr.(j) with
      | Some oo when oo.oo_phase = 1 ->
          t.timeouts <- t.timeouts + 1;
          retry_or_give_up t oo
      | _ -> ())

(* --- deadline sweep --- *)

let sweep t =
  for i = 0 to Array.length t.sess - 1 do
    match t.waiting.(i) with
    | Some _ when t.sess_deadline.(i) <= t.now ->
        t.waiting.(i) <- None;
        t.timeouts <- t.timeouts + 1;
        Session.answer t.sess.(i) Session.Timeout;
        settle t i
    | _ -> ()
  done;
  for j = 0 to t.open_gen - 1 do
    match t.open_arr.(j) with
    | Some oo when oo.oo_phase = 1 && oo.oo_due <= t.now ->
        t.timeouts <- t.timeouts + 1;
        retry_or_give_up t oo
    | _ -> ()
  done

(* --- universal backend --- *)

let u_busy s w = Cell.peek s.done_epoch.(w) < s.cur.(w).epoch

let u_any_busy s =
  let n = Array.length s.cur in
  let rec go w = w < n && (u_busy s w || go (w + 1)) in
  go 0

let counter_lin = Derived.lin_spec Derived.counter

let run_window_check t s =
  t.checks <- t.checks + 1;
  let window = Conditions.durable_window ~after:s.watermark s.u_hist in
  if window <> [] then begin
    if
      not
        (Conditions.durably_linearizable_window counter_lin ~after:s.watermark
           ~init:s.window_init s.u_hist)
    then
      violation t
        (Printf.sprintf "durable linearizability violated in the %d-op window after tag %d"
           (List.length window) s.watermark);
    s.watermark <-
      List.fold_left (fun a (o : _ History.operation) -> max a o.op_tag) s.watermark window;
    s.window_init <- Runiversal.current_state s.u
  end;
  s.ops_since_check <- 0

let tick_u t s =
  let workers = Array.length s.cur in
  (* dispatch batches to idle workers; paused while draining for a check *)
  if not s.draining then
    for w = 0 to workers - 1 do
      if (not (u_busy s w)) && not (Admission.is_empty t.queue) then begin
        let ops = Array.of_list (Admission.pop_up_to t.queue t.cfg.batch) in
        if Array.length ops > 0 then begin
          let c = s.cur.(w) in
          c.epoch <- c.epoch + 1;
          c.wops <- ops;
          c.next_ack <- 0;
          Array.iter (fun r -> r.o_status <- Inflight) ops;
          (* poke = durable out-of-simulation delivery: the assignment
             channel models a message, not crash-vulnerable state *)
          Cell.poke s.assignment.(w)
            (Some (c.epoch, Array.map (fun r -> (r.o_id, r.o_op)) ops))
        end
      end
    done;
  (* adversary: crash points sit at tick boundaries *)
  let eligible = ref [] in
  for w = workers - 1 downto 0 do
    if Sim.started s.u_sim w then eligible := w :: !eligible
  done;
  let victims = Adversary.decide t.adv ~eligible:!eligible ~total_steps:(Sim.total_steps s.u_sim) in
  List.iter
    (fun v ->
      Sim.crash s.u_sim v;
      History.crash s.u_hist ~pid:v;
      if u_busy s v then s.cur.(v).marks <- t.now :: s.cur.(v).marks)
    victims;
  (* step busy workers a bounded quantum each; a body blowing up is the
     construction corrupting itself (the barrier-free negative control
     does exactly this under lossy churn) -- surface it as a violation *)
  for w = 0 to workers - 1 do
    let q = ref t.cfg.quantum in
    while !q > 0 && u_busy s w do
      (try ignore (Sim.step_proc s.u_sim w)
       with Invalid_argument m ->
         violation t (Printf.sprintf "construction failure on worker %d: %s" w m));
      decr q
    done
  done;
  (* deliver completions in batch order; close recovery intervals *)
  for w = 0 to workers - 1 do
    let c = s.cur.(w) in
    while c.next_ack < Array.length c.wops && s.results.(c.wops.(c.next_ack).o_id) <> None do
      let r = c.wops.(c.next_ack) in
      let resp = Option.get s.results.(r.o_id) in
      (match r.o_status with
      | Completed _ -> ()
      | _ ->
          r.o_status <- Completed resp;
          s.ops_since_check <- s.ops_since_check + 1);
      deliver_success t r resp;
      c.next_ack <- c.next_ack + 1
    done;
    if (not (u_busy s w)) && c.marks <> [] then begin
      List.iter
        (fun m ->
          Metrics.add t.rec_h (t.now - m);
          t.recoveries <- t.recoveries + 1)
        c.marks;
      c.marks <- []
    end
  done;
  (* windowed online check at drain points *)
  if t.cfg.check_window > 0 && s.ops_since_check >= t.cfg.check_window then s.draining <- true;
  if s.draining && not (u_any_busy s) then begin
    run_window_check t s;
    s.draining <- false
  end

(* Lost-ack audit: every acknowledged op must sit in the final
   linearization exactly once (the idempotent-retry contract). *)
let audit_u t s =
  let seen = Hashtbl.create 256 in
  let lin = Runiversal.linearization s.u in
  List.iter
    (fun (nd : _ Runiversal.node) ->
      let _, oid = nd.Runiversal.tag in
      Hashtbl.replace seen oid (1 + Option.value ~default:0 (Hashtbl.find_opt seen oid)))
    lin;
  let lost = ref 0 and dup = ref 0 in
  List.iter
    (fun r ->
      if r.o_acked then
        match Hashtbl.find_opt seen r.o_id with
        | Some 1 -> ()
        | Some _ -> incr dup
        | None -> incr lost)
    t.all_ops;
  if !lost > 0 || !dup > 0 then
    violation t
      (Printf.sprintf "acknowledged-op audit failed: %d lost, %d duplicated of %d acked" !lost
         !dup t.acked);
  Buffer.add_string t.commit_buf
    (String.concat ","
       (List.map (fun (nd : _ Runiversal.node) -> string_of_int (snd nd.Runiversal.tag)) lin));
  Buffer.add_string t.commit_buf
    (Printf.sprintf ";state=%d" (Runiversal.current_state s.u))

(* --- log backend --- *)

let ack_committed t g =
  let c = Rlog.committed g.g_log in
  while g.g_acked < min c (Array.length g.g_reqs) do
    let slot = g.g_acked in
    let r = g.g_reqs.(slot) in
    let resp = Option.value ~default:(-1) (Rlog.decided_value g.g_log ~slot) in
    (match r.o_status with Completed _ -> () | _ -> r.o_status <- Completed resp);
    deliver_success t r resp;
    g.g_acked <- g.g_acked + 1
  done

let finish_gen t s g =
  ack_committed t g;
  let cfin = Rlog.committed g.g_log in
  g.g_trace <- cfin :: g.g_trace;
  let bad = ref None in
  Rlog.check_exn ~fail:(fun m -> if !bad = None then bad := Some m) g.g_log;
  (match !bad with
  | Some m -> violation t (Printf.sprintf "log state invariant: %s" m)
  | None -> ());
  let v = Rlog.verdict ~committed_trace:(List.rev g.g_trace) g.g_log in
  if not (Conditions.log_verdict_ok v) then
    violation t
      (Printf.sprintf
         "prefix durability violated: slot_agreement=%b prefix_monotone=%b durable_lin=%b"
         v.Conditions.slot_agreement v.Conditions.prefix_monotone v.Conditions.durable_lin);
  t.checks <- t.checks + 1;
  let replays = Rlog.recovery_steps g.g_log and recs = Rlog.recoveries g.g_log in
  Array.iteri (fun p n -> if recs.(p) > 0 then Metrics.add t.replay_h n) replays;
  (* slots the retired generation never committed (reachable only
     without barriers): fail them promptly so clients re-admit *)
  for slot = cfin to Array.length g.g_reqs - 1 do
    let r = g.g_reqs.(slot) in
    match r.o_status with
    | Completed _ -> ()
    | _ ->
        r.o_status <- Failed;
        deliver_failure t r
  done;
  Buffer.add_string t.commit_buf (Printf.sprintf "g%d:" s.gens);
  for slot = 0 to cfin - 1 do
    Buffer.add_string t.commit_buf
      (Printf.sprintf "%d," (Option.value ~default:min_int (Rlog.decided_value g.g_log ~slot)))
  done;
  Buffer.add_string t.commit_buf (Printf.sprintf "c=%d|" cfin);
  t.steps_acc <- t.steps_acc + Sim.total_steps g.g_sim;
  s.gens <- s.gens + 1;
  Sim.abandon g.g_sim;
  s.gen <- None

let tick_l t s =
  (match s.gen with
  | None when not (Admission.is_empty t.queue) ->
      let reqs = Array.of_list (Admission.pop_up_to t.queue t.cfg.slots) in
      Array.iter (fun r -> r.o_status <- Inflight) reqs;
      let g_log, g_sim = Rlog.instance ~annotated:t.cfg.annotated ~slots:(Array.length reqs) s.l_cert in
      s.gen <-
        Some
          {
            g_log;
            g_sim;
            g_reqs = reqs;
            g_acked = 0;
            g_trace = [];
            g_marks = Array.make (Rlog.num_procs g_log) [];
          }
  | _ -> ());
  match s.gen with
  | None -> ()
  | Some g ->
      let n = Rlog.num_procs g.g_log in
      let eligible = ref [] in
      for p = n - 1 downto 0 do
        if Sim.started g.g_sim p && not (Sim.finished g.g_sim p) then eligible := p :: !eligible
      done;
      let victims =
        Adversary.decide t.adv ~eligible:!eligible ~total_steps:(Sim.total_steps g.g_sim)
      in
      List.iter
        (fun v ->
          Sim.crash g.g_sim v;
          Rlog.note_crash g.g_log ~pid:v;
          g.g_trace <- Rlog.committed g.g_log :: g.g_trace;
          g.g_marks.(v) <- t.now :: g.g_marks.(v))
        victims;
      for p = 0 to n - 1 do
        let q = ref t.cfg.quantum in
        while !q > 0 && not (Sim.finished g.g_sim p) do
          (try ignore (Sim.step_proc g.g_sim p)
           with Invalid_argument m ->
             violation t (Printf.sprintf "log proc %d failure: %s" p m));
          decr q
        done;
        if Sim.finished g.g_sim p && g.g_marks.(p) <> [] then begin
          List.iter
            (fun m ->
              Metrics.add t.rec_h (t.now - m);
              t.recoveries <- t.recoveries + 1)
            g.g_marks.(p);
          g.g_marks.(p) <- []
        end
      done;
      ack_committed t g;
      if Sim.all_finished g.g_sim then finish_gen t s g

(* --- construction --- *)

let make_universal cfg =
  let hist = History.create () in
  let u = Runiversal.create ~history:hist ~annotated:cfg.annotated ~n:cfg.workers Derived.counter in
  let assignment = Array.init cfg.workers (fun _ -> Cell.make None) in
  let done_epoch = Array.init cfg.workers (fun _ -> Cell.make 0) in
  let results = Array.make (max 1 (max_ops cfg)) None in
  let body w () =
    (* Infinite serve loop: poll the assignment channel, execute the
       batch through idempotent invokes, publish completion.  Every poll
       iteration is two simulated steps, so the engine only steps a
       worker while its epoch is behind. *)
    let rec serve () =
      let e_done = Cell.read done_epoch.(w) in
      (match Cell.read assignment.(w) with
      | Some (epoch, ops) when epoch > e_done ->
          Array.iter
            (fun (oid, op) ->
              let r = Runiversal.invoke u ~pid:w ~index:oid op in
              results.(oid) <- Some r)
            ops;
          Cell.write done_epoch.(w) epoch;
          if cfg.annotated then Cell.flush done_epoch.(w)
      | _ -> ());
      serve ()
    in
    serve ()
  in
  let sim = Sim.create ~n:cfg.workers body in
  B_u
    {
      u;
      u_hist = hist;
      u_sim = sim;
      assignment;
      done_epoch;
      results;
      cur = Array.init cfg.workers (fun _ -> { epoch = 0; wops = [||]; next_ack = 0; marks = [] });
      watermark = -1;
      window_init = counter_lin.Linearizability.init;
      ops_since_check = 0;
      draining = false;
    }

let make cfg =
  let be =
    match cfg.kind with
    | Universal -> make_universal cfg
    | Log -> B_l { l_cert = Option.get cfg.cert; gen = None; gens = 0 }
  in
  let t =
    {
      cfg;
      now = 0;
      queue = Admission.create ~cap:cfg.queue_cap;
      sess =
        Array.init cfg.sessions (fun i ->
            let rng = Random.State.make [| cfg.seed; cfg.id; 1000 + i |] in
            Session.spawn (client_body cfg rng));
      closed_ops = Array.init cfg.sessions (fun _ -> Array.make (max 1 cfg.ops_per_session) None);
      waiting = Array.make cfg.sessions None;
      sess_deadline = Array.make cfg.sessions 0;
      wake_at = Array.make cfg.sessions (-1);
      open_arr = Array.make (max 1 cfg.open_ops) None;
      open_gen = 0;
      open_acc = 0.0;
      open_rng = Random.State.make [| cfg.seed; cfg.id; 555 |];
      adv = Adversary.create ~seed:(cfg.seed + (31 * (cfg.id + 1))) cfg.adversary;
      be;
      all_ops = [];
      next_oid = 0;
      retries = 0;
      timeouts = 0;
      overloads = 0;
      acked = 0;
      recoveries = 0;
      checks = 0;
      steps_acc = 0;
      lat = Metrics.hist ();
      rec_h = Metrics.hist ();
      replay_h = Metrics.hist ();
      commit_buf = Buffer.create 256;
      stuck = false;
    }
  in
  t

(* --- termination --- *)

let sessions_done t =
  let n = Array.length t.sess in
  let rec go i = i >= n || (Session.poised t.sess.(i) = Session.Finished && go (i + 1)) in
  go 0

let opens_done t =
  t.open_gen >= t.cfg.open_ops
  &&
  let rec go j =
    j >= t.open_gen
    || ((match t.open_arr.(j) with Some oo -> oo.oo_phase = 2 | None -> false) && go (j + 1))
  in
  go 0

let backend_idle t =
  match t.be with B_u s -> not (u_any_busy s) | B_l s -> s.gen = None

let done_cond t =
  sessions_done t && opens_done t && Admission.is_empty t.queue && backend_idle t

let cleanup t =
  Array.iter Session.abort t.sess;
  match t.be with
  | B_u s -> Sim.abandon s.u_sim
  | B_l s -> ( match s.gen with Some g -> Sim.abandon g.g_sim | None -> ())

let final_checks t =
  match t.be with
  | B_u s ->
      run_window_check t s;
      audit_u t s
  | B_l _ -> () (* every generation was checked as it retired *)

let report t =
  let submitted = ref 0
  and completed = ref 0
  and completed_unacked = ref 0
  and gave_up = ref 0 in
  List.iter
    (fun r ->
      if r.o_submit >= 0 then begin
        incr submitted;
        if not r.o_acked then incr gave_up
      end;
      match r.o_status with
      | Completed _ ->
          incr completed;
          if not r.o_acked then incr completed_unacked
      | _ -> ())
    t.all_ops;
  let sim_steps =
    t.steps_acc + (match t.be with B_u s -> Sim.total_steps s.u_sim | B_l _ -> 0)
  in
  {
    r_id = t.cfg.id;
    r_kind = (match t.cfg.kind with Universal -> "universal" | Log -> "log");
    r_ticks = t.now;
    r_sim_steps = sim_steps;
    r_submitted = !submitted;
    r_acked = t.acked;
    r_completed = !completed;
    r_completed_unacked = !completed_unacked;
    r_gave_up = !gave_up;
    r_retries = t.retries;
    r_timeouts = t.timeouts;
    r_overloads = t.overloads;
    r_shed = Admission.shed t.queue;
    r_admitted = Admission.admitted t.queue;
    r_queue_high_water = Admission.high_water t.queue;
    r_crashes_delivered = Adversary.crashes_injected t.adv;
    r_crashes_requested = Adversary.crashes_requested t.adv;
    r_recoveries = t.recoveries;
    r_checks_run = t.checks;
    r_generations = (match t.be with B_l s -> s.gens | B_u _ -> 0);
    r_stuck = t.stuck;
    r_latency = t.lat;
    r_recovery = t.rec_h;
    r_replay = t.replay_h;
    r_commit_trace = Buffer.contents t.commit_buf;
  }

let run_inner cfg =
  let t = make cfg in
  let finished = ref false in
  (try
     (* boot: start every session fiber (thundering herd by design --
        admission sheds, jittered backoff spreads the re-arrivals) *)
     Array.iteri
       (fun i s ->
         Session.start s;
         settle t i)
       t.sess;
     while (not !finished) && t.now < cfg.max_ticks do
       t.now <- t.now + 1;
       for i = 0 to Array.length t.sess - 1 do
         if t.wake_at.(i) >= 0 && t.wake_at.(i) <= t.now then begin
           t.wake_at.(i) <- -1;
           Session.wake t.sess.(i);
           settle t i
         end
       done;
       open_phase t;
       (match t.be with B_u s -> tick_u t s | B_l s -> tick_l t s);
       sweep t;
       if done_cond t then begin
         final_checks t;
         finished := true
       end
     done
   with e ->
     cleanup t;
     raise e);
  if not !finished then t.stuck <- true;
  cleanup t;
  report t

let run cfg =
  validate cfg;
  match (cfg.persist, cfg.flush_cost) with
  | Persist.Eager, 1 -> run_inner cfg
  | p, fc -> Persist.scoped ~flush_cost:fc p (fun () -> run_inner cfg)
