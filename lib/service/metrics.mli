(** Integer-valued histograms for the service soak: latency in ticks,
    recovery times, replayed slots.  Dense counts up to a cap with an
    overflow bucket, so adds are O(1), merges are element-wise, and two
    histograms with the same observations are structurally equal -- the
    cross-domain determinism tests compare whole reports with [(=)].

    Everything here is plain data and per-instance; no locks, no
    global state. *)

type hist = {
  cap : int;  (** values [>= cap] land in the overflow bucket *)
  counts : int array;  (** [counts.(v)] = observations of value [v] *)
  mutable overflow : int;
  mutable total : int;
  mutable sum : int;
  mutable max_seen : int;
}

val hist : ?cap:int -> unit -> hist
(** Fresh empty histogram (default cap 2048). *)

val add : hist -> int -> unit
(** Record one observation (negative values clamp to 0). *)

val percentile : hist -> float -> int
(** [percentile h p] (p in [0,1]): smallest value whose cumulative count
    reaches [ceil (p *. total)].  When the rank falls into the overflow
    bucket, reports [max_seen] (which is [>= cap] in that case) so the
    result stays comparable against floors instead of saturating at
    [cap].  0 on an empty histogram. *)

val mean : hist -> float

val merge_into : dst:hist -> hist -> unit
(** Element-wise add; the caps must agree. *)

val sparse : hist -> (int * int) list
(** Non-empty buckets as [(value, count)] pairs in ascending value
    order, the overflow bucket (if any) last under value [cap] -- the
    compact JSON rendering. *)
