(** Admission control: a bounded FIFO of pending operations per hosted
    instance.  When the queue is full the submission is {e shed} -- the
    client gets an explicit [Overloaded] answer and backs off; nothing
    is ever dropped silently and nothing blocks, so overload degrades
    throughput instead of deadlocking the worker pool.  Counters feed
    the soak report's shed-rate. *)

type 'a t

val create : cap:int -> 'a t
(** @raise Invalid_argument when [cap < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val try_enqueue : 'a t -> 'a -> bool
(** [true] = admitted; [false] = queue full, counted as shed. *)

val pop_up_to : 'a t -> int -> 'a list
(** Dequeue up to [n] items in FIFO order (one dispatch batch). *)

val admitted : 'a t -> int
(** Total submissions admitted over the queue's lifetime. *)

val shed : 'a t -> int
(** Total submissions rejected ([try_enqueue] = [false]). *)

val high_water : 'a t -> int
(** Maximum queue length ever reached. *)
