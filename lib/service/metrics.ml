(* Dense integer histograms; see the interface. *)

type hist = {
  cap : int;
  counts : int array;
  mutable overflow : int;
  mutable total : int;
  mutable sum : int;
  mutable max_seen : int;
}

let hist ?(cap = 2048) () =
  if cap < 1 then invalid_arg "Metrics.hist: cap must be positive";
  { cap; counts = Array.make cap 0; overflow = 0; total = 0; sum = 0; max_seen = 0 }

let add h v =
  let v = max 0 v in
  if v >= h.cap then h.overflow <- h.overflow + 1 else h.counts.(v) <- h.counts.(v) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum + v;
  if v > h.max_seen then h.max_seen <- v

(* When the target rank falls into the overflow bucket the dense counts
   cannot resolve it; report [max_seen] (>= cap there) rather than
   saturating at [cap], so gates comparing percentiles against floors
   still see regressions that push the tail beyond the histogram cap. *)
let percentile h p =
  if h.total = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (p *. float_of_int h.total))) in
    let acc = ref 0 and result = ref h.max_seen in
    (try
       for v = 0 to h.cap - 1 do
         acc := !acc + h.counts.(v);
         if !acc >= target then begin
           result := v;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let mean h = if h.total = 0 then 0.0 else float_of_int h.sum /. float_of_int h.total

let merge_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "Metrics.merge_into: cap mismatch";
  Array.iteri (fun v c -> dst.counts.(v) <- dst.counts.(v) + c) src.counts;
  dst.overflow <- dst.overflow + src.overflow;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum + src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen

let sparse h =
  let acc = ref [] in
  if h.overflow > 0 then acc := [ (h.cap, h.overflow) ];
  for v = h.cap - 1 downto 0 do
    if h.counts.(v) > 0 then acc := (v, h.counts.(v)) :: !acc
  done;
  !acc
