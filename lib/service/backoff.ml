(* Truncated exponential backoff with full jitter; see the interface. *)

type policy = { base : int; cap : int; max_retries : int; deadline : int }

let default = { base = 2; cap = 64; max_retries = 8; deadline = 48 }

let validate p =
  if p.base < 1 then invalid_arg "Backoff: base must be >= 1";
  if p.cap < 1 then invalid_arg "Backoff: cap must be >= 1";
  if p.deadline < 1 then invalid_arg "Backoff: deadline must be >= 1";
  if p.max_retries < 0 then invalid_arg "Backoff: max_retries must be >= 0"

let delay p ~rng ~attempt =
  (* [lsl] overflows past 62 doublings; the cap kicks in long before,
     so clamp the exponent instead of the product. *)
  let bound = if attempt >= 30 then p.cap else min p.cap (p.base lsl max 0 attempt) in
  1 + Random.State.int rng (max 1 bound)
