(** One hosted shard of the recoverable-consensus service: a
    {!Rcons_universal.Runiversal} counter (or a {!Rcons_log.Rlog}
    replicated log) served by a bounded worker pool of simulated
    processes, multiplexing its client sessions under injected
    crash/recover churn.

    An instance is a fully self-contained deterministic discrete-event
    simulation: its own adversary, its own RNGs (seeded from
    [(seed, id)]), its own {!Rcons_runtime.Persist} cache, its own
    admission queue, sessions and worker [Sim].  {!run} drives it from
    creation to completion on the calling domain and returns a plain-data
    {!report}; running the same config twice -- on any domain -- yields
    structurally equal reports, which is what lets the service layer
    partition instances across domains without changing any result.

    {2 Engine shape (one tick)}

    wake backed-off sessions -> open-loop arrivals and retries ->
    dispatch batches to idle workers (or start a log generation) ->
    adversary crash decision ({!Rcons_runtime.Adversary.decide}) ->
    step busy workers a bounded quantum -> deliver completions and close
    recovery intervals -> sweep deadlines (timeout answers) -> windowed
    online check at drain points.

    Crashes arrive only at tick boundaries (quantum-granular crash
    points); recovery is the model's own: the crashed worker re-runs its
    body, and {!Rcons_universal.Runiversal.invoke}'s idempotent
    [(pid, op-id)] registry (or the log's durable-vote replay) turns the
    re-execution into recovery replay.

    {2 Online checking}

    The durable-linearizability checker runs over bounded history
    windows cut at drain points (dispatch pauses until in-flight batches
    complete), respecting {!Rcons_history.Linearizability.check}'s
    62-operation bound: [check_window + workers * batch <= 62] is
    enforced at config validation.  Each window starts from the peeked
    abstract state after the previous one, so an acknowledged effect
    lost to a later crash fails the {e next} window (one-window
    detection lag).  Log instances check per generation:
    {!Rcons_log.Rlog.check_exn} plus the prefix-durability verdict.  Any
    failure raises {!Violation} -- the soak aborts, never limps on. *)

exception Violation of { instance : int; tick : int; msg : string }

type kind = Universal | Log

type config = {
  id : int;  (** instance id; also salts every per-instance seed *)
  seed : int;
  kind : kind;
  adversary : Rcons_runtime.Adversary.policy;
  persist : Rcons_runtime.Persist.policy;
  flush_cost : int;
  annotated : bool;
      (** persist barriers on ([true], the hardened service); [false] is
          the negative control that the online checkers must catch under
          a non-eager policy *)
  workers : int;  (** universal worker-pool size (log: the certificate decides) *)
  batch : int;  (** max ops dispatched to one worker per epoch *)
  queue_cap : int;  (** admission bound; beyond it submissions shed *)
  quantum : int;  (** max simulated steps per busy worker per tick *)
  sessions : int;  (** closed-loop client sessions (effect fibers) *)
  ops_per_session : int;
  open_rate : float;  (** open-loop arrivals per tick (0 = closed-loop only) *)
  open_ops : int;  (** total open-loop ops to generate *)
  retry : Backoff.policy;
  check_window : int;  (** ops per online-check window; 0 = final check only *)
  slots : int;  (** log: max slots per generation *)
  cert : Rcons_check.Certificate.recording option;  (** required for [Log] *)
  max_ticks : int;  (** hard stop; hitting it reports [r_stuck] *)
}

val validate : config -> unit
(** @raise Invalid_argument on inconsistent knobs (empty pool, window
    over the 62-op bound, log without certificate, ...). *)

(** Plain data (histograms are int arrays), so cross-domain determinism
    tests compare whole reports with [(=)]. *)
type report = {
  r_id : int;
  r_kind : string;
  r_ticks : int;
  r_sim_steps : int;
  r_submitted : int;  (** distinct ops that reached admission at least once *)
  r_acked : int;  (** ops whose success was delivered to the client *)
  r_completed : int;  (** ops the object applied (acked or not) *)
  r_completed_unacked : int;  (** applied after the client gave up *)
  r_gave_up : int;  (** submitted, never acknowledged *)
  r_retries : int;  (** re-submissions of an already submitted op *)
  r_timeouts : int;  (** Timeout answers delivered *)
  r_overloads : int;  (** Overloaded answers delivered *)
  r_shed : int;  (** admission rejections *)
  r_admitted : int;
  r_queue_high_water : int;
  r_crashes_delivered : int;
  r_crashes_requested : int;
  r_recoveries : int;  (** interrupted-work recovery intervals closed *)
  r_checks_run : int;
  r_generations : int;  (** log generations completed *)
  r_stuck : bool;  (** hit [max_ticks] with work outstanding *)
  r_latency : Metrics.hist;  (** submit -> ack, in ticks *)
  r_recovery : Metrics.hist;  (** crash -> interrupted work completed, in ticks *)
  r_replay : Metrics.hist;  (** log: slots replayed per process recovery *)
  r_commit_trace : string;  (** canonical commit order, for digesting *)
}

val run : config -> report
(** Drive the instance to completion (every session finished, every open
    op resolved, queue drained, final checks passed) or to [max_ticks].

    @raise Violation on any online or final checker failure, including a
    lost acknowledged op. *)
