(** Client-side retry policy: deadline-based timeouts with seeded
    truncated-exponential backoff and full jitter.

    A client that gets [Overloaded] (admission shed) or [Timeout]
    (deadline passed with the op still in flight) sleeps
    [delay ~attempt] ticks and retries, up to [max_retries] attempts;
    the jitter draws from the {e caller's} RNG so the whole soak stays a
    pure function of [(seed, policy, persist)].  Retries are keyed by
    idempotent op ids at the instance layer -- a retry of an in-flight
    op re-arms the deadline without re-submitting, so backoff never
    duplicates work. *)

type policy = {
  base : int;  (** first-retry backoff bound, in ticks (>= 1) *)
  cap : int;  (** truncation: no single delay exceeds [cap] ticks *)
  max_retries : int;  (** attempts after the first before giving up *)
  deadline : int;  (** per-attempt response deadline, in ticks *)
}

val default : policy
(** [{ base = 2; cap = 64; max_retries = 8; deadline = 48 }]. *)

val validate : policy -> unit
(** @raise Invalid_argument on non-positive [base]/[cap]/[deadline] or
    negative [max_retries]. *)

val delay : policy -> rng:Random.State.t -> attempt:int -> int
(** Full-jitter truncated exponential backoff for the [attempt]-th retry
    (0-based): uniform in [[1, min cap (base * 2^attempt)]].  Consumes
    exactly one [int] draw from [rng]. *)
