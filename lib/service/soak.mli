(** The crash-churn soak harness: a fleet of {!Instance}s driven to
    completion, optionally fanned out across domains.

    Instances are fully independent simulations (private RNGs, private
    persistency caches, private adversaries), so the fleet partitions
    statically: instance [i] runs on domain [i mod domains], each domain
    runs its share sequentially, and the merged {!summary} -- including
    the {!summary.s_commit_digest} over every instance's commit trace --
    is identical for any [domains] count.  [test/test_service.ml] holds
    that equality across 1/2/4 domains.

    A checker {!Instance.Violation} raised by any instance aborts the
    soak: all domains still run to completion (a domain cannot be
    interrupted mid-instance), then the violation from the
    lowest-numbered failing instance is re-raised, deterministically. *)

(** Fleet-wide aggregates.  Sums over instances unless noted; histograms
    are merged bucket-wise. *)
type summary = {
  s_instances : int;
  s_ticks : int;  (** max over instances *)
  s_sim_steps : int;
  s_submitted : int;
  s_acked : int;
  s_completed : int;
  s_completed_unacked : int;
  s_gave_up : int;
  s_retries : int;
  s_timeouts : int;
  s_overloads : int;
  s_shed : int;
  s_admitted : int;
  s_queue_high_water : int;  (** max over instances *)
  s_crashes_delivered : int;
  s_crashes_requested : int;
  s_recoveries : int;
  s_checks_run : int;
  s_generations : int;
  s_stuck : int;  (** instances that hit [max_ticks] *)
  s_latency : Metrics.hist;
  s_recovery : Metrics.hist;
  s_replay : Metrics.hist;
  s_commit_digest : string;
      (** hex digest over every instance's commit trace, in id order:
          the one value the determinism tests compare across domain
          counts and replays *)
}

type outcome = { reports : Instance.report list; summary : summary }

val default : id:int -> seed:int -> Instance.config
(** A small, valid universal-instance config (uniform churn, eager
    persistency, annotated, windowed checking) for call sites to
    override field-wise. *)

val summarize : Instance.report list -> summary

val run : ?domains:int -> Instance.config list -> outcome
(** Run every instance to completion and merge.  [domains] defaults to
    [1]; the result is independent of it.

    @raise Instance.Violation if any instance's online or final checks
    failed (lowest instance index wins when several fail).
    @raise Invalid_argument if [domains < 1] or any config is invalid
    (all configs are validated up front, before anything runs). *)
