(* Fleet soak driver; see the interface. *)

open Rcons_runtime

type summary = {
  s_instances : int;
  s_ticks : int;
  s_sim_steps : int;
  s_submitted : int;
  s_acked : int;
  s_completed : int;
  s_completed_unacked : int;
  s_gave_up : int;
  s_retries : int;
  s_timeouts : int;
  s_overloads : int;
  s_shed : int;
  s_admitted : int;
  s_queue_high_water : int;
  s_crashes_delivered : int;
  s_crashes_requested : int;
  s_recoveries : int;
  s_checks_run : int;
  s_generations : int;
  s_stuck : int;
  s_latency : Metrics.hist;
  s_recovery : Metrics.hist;
  s_replay : Metrics.hist;
  s_commit_digest : string;
}

type outcome = { reports : Instance.report list; summary : summary }

let default ~id ~seed =
  {
    Instance.id;
    seed;
    kind = Instance.Universal;
    adversary = Adversary.Uniform { crash_prob = 0.05; max_crashes = 8 };
    persist = Persist.Eager;
    flush_cost = 2;
    annotated = true;
    workers = 3;
    batch = 4;
    queue_cap = 32;
    quantum = 6;
    sessions = 16;
    ops_per_session = 4;
    open_rate = 0.25;
    open_ops = 8;
    retry = Backoff.default;
    check_window = 24;
    slots = 4;
    cert = None;
    max_ticks = 50_000;
  }

let summarize reports =
  let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
  let maxi f = List.fold_left (fun a r -> max a (f r)) 0 reports in
  let lat = Metrics.hist () and rec_h = Metrics.hist () and replay = Metrics.hist () in
  let buf = Buffer.create 512 in
  List.iter
    (fun (r : Instance.report) ->
      Metrics.merge_into ~dst:lat r.Instance.r_latency;
      Metrics.merge_into ~dst:rec_h r.Instance.r_recovery;
      Metrics.merge_into ~dst:replay r.Instance.r_replay;
      Buffer.add_string buf (string_of_int r.Instance.r_id);
      Buffer.add_char buf '#';
      Buffer.add_string buf r.Instance.r_commit_trace;
      Buffer.add_char buf '\n')
    reports;
  {
    s_instances = List.length reports;
    s_ticks = maxi (fun r -> r.Instance.r_ticks);
    s_sim_steps = sum (fun r -> r.Instance.r_sim_steps);
    s_submitted = sum (fun r -> r.Instance.r_submitted);
    s_acked = sum (fun r -> r.Instance.r_acked);
    s_completed = sum (fun r -> r.Instance.r_completed);
    s_completed_unacked = sum (fun r -> r.Instance.r_completed_unacked);
    s_gave_up = sum (fun r -> r.Instance.r_gave_up);
    s_retries = sum (fun r -> r.Instance.r_retries);
    s_timeouts = sum (fun r -> r.Instance.r_timeouts);
    s_overloads = sum (fun r -> r.Instance.r_overloads);
    s_shed = sum (fun r -> r.Instance.r_shed);
    s_admitted = sum (fun r -> r.Instance.r_admitted);
    s_queue_high_water = maxi (fun r -> r.Instance.r_queue_high_water);
    s_crashes_delivered = sum (fun r -> r.Instance.r_crashes_delivered);
    s_crashes_requested = sum (fun r -> r.Instance.r_crashes_requested);
    s_recoveries = sum (fun r -> r.Instance.r_recoveries);
    s_checks_run = sum (fun r -> r.Instance.r_checks_run);
    s_generations = sum (fun r -> r.Instance.r_generations);
    s_stuck = sum (fun r -> if r.Instance.r_stuck then 1 else 0);
    s_latency = lat;
    s_recovery = rec_h;
    s_replay = replay;
    s_commit_digest = Digest.to_hex (Digest.string (Buffer.contents buf));
  }

let run ?(domains = 1) cfgs =
  if domains < 1 then invalid_arg "Soak.run: domains must be >= 1";
  List.iter Instance.validate cfgs;
  let cfgs = Array.of_list cfgs in
  let n = Array.length cfgs in
  let results = Array.make n None in
  (* Static partition: instance i runs on domain (i mod domains).  Each
     slice is sequential, so per-domain ambient state (the Persist
     cache) is bracketed instance by instance. *)
  let run_slice d =
    let out = ref [] in
    for i = 0 to n - 1 do
      if i mod domains = d then begin
        let r = try Ok (Instance.run cfgs.(i)) with Instance.Violation _ as e -> Error e in
        out := (i, r) :: !out
      end
    done;
    !out
  in
  let record = List.iter (fun (i, r) -> results.(i) <- Some r) in
  if domains = 1 || n <= 1 then record (run_slice 0)
  else begin
    let doms = Array.init domains (fun d -> Domain.spawn (fun () -> run_slice d)) in
    Array.iter (fun dm -> record (Domain.join dm)) doms
  end;
  let reports =
    Array.to_list
      (Array.map
         (function
           | Some (Ok rep) -> rep
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  in
  { reports; summary = summarize reports }
