(** Recoverable replicated log: a chain of recoverable-consensus
    instances with a quorum-counter committed prefix.

    Each of the [slots] log positions is decided by its own recoverable
    team-consensus instance ({!Rcons_algo.Team_consensus}, Figure 2 of
    the paper) instantiated from one recording certificate; every member
    of a team proposes the same per-(team, slot) value, so the
    certificate's {!Rcons_check.Certificate.symmetry_classes} stay sound
    for the symmetry-reducing explorer.  On top of the per-slot
    instances sit two shared structures in the non-volatile heap:

    - the {e chain}: [decided.(slot)], a register caching each slot's
      decision so recovery can replay the prefix without re-running
      consensus; and
    - the {e quorum counter} (modeled on the Wasp QC module, see
      SNIPPETS.md): [votes.(pid)] is the length of the prefix process
      [pid] has durably completed, and the {b committed prefix} is the
      largest [li] such that at least a majority of processes have a
      {e durable} vote [>= li] -- volatile progress commits nothing.

    A process crashing mid-append loses its volatile state and restarts
    its whole body: recovery reads its own durable vote, replays the
    chain prefix it advertises (counted in {!recovery_steps}), and
    resumes appending from there -- re-entering a slot's consensus
    instance mid-decision is exactly the crash-restart the Figure 2
    algorithm is built for.

    The [annotated] variant adds the persist-barrier discipline for the
    write-back cache models ({!Rcons_runtime.Persist}): a slot's
    decision is made durable (write + link-and-persist read, retried
    until the durable copy holds a decision) {e before} the vote that
    advertises it is flushed.  Without the barriers ([annotated =
    false]) the lossy cache model breaks per-slot agreement -- the
    committed witness in [_counterexamples/] replays the shrunk
    schedule.  [vote_first] inverts the barrier order (vote durable
    before the decision) as a negative control: the explorer exhibits a
    committed slot whose decision a crash un-persists. *)

type t

val create :
  ?faithful:bool ->
  ?annotated:bool ->
  ?vote_first:bool ->
  slots:int ->
  Rcons_check.Certificate.recording ->
  t
(** Allocate the log's shared state (per-slot consensus instances,
    chain, quorum counter) under the ambient {!Rcons_runtime.Persist}
    cache and {!Rcons_runtime.Heap} arena, and register the
    observation log, conflict flag and checker watermark with the arena
    so {!check_exn} stays a state property for the deduplicating
    explorer.  [faithful]/[annotated] are passed to each slot's
    {!Rcons_algo.Team_consensus.create}; [vote_first] (default [false])
    enables the negative-control barrier order.

    @raise Invalid_argument when [slots < 1]. *)

val body : t -> int -> unit -> unit
(** Process body for {!Rcons_runtime.Sim.create}: recover (replay the
    durable prefix my vote advertises), then append every remaining
    slot in order. *)

val instance :
  ?faithful:bool ->
  ?annotated:bool ->
  ?vote_first:bool ->
  slots:int ->
  Rcons_check.Certificate.recording ->
  t * Rcons_runtime.Sim.t
(** {!create} plus the simulated system running {!body} on
    [num_procs] processes. *)

val num_procs : t -> int
val num_slots : t -> int

val teams : t -> int * int
(** Team sizes [(|A|, |B|)] inherited from the certificate; pids
    [0 .. size_a - 1] are team A. *)

val proposal : t -> pid:int -> slot:int -> int
(** The value [pid] proposes for [slot] (one value per (team, slot)). *)

val committed : t -> int
(** The committed prefix length: largest [li] such that a majority of
    processes have a durable vote [>= li], read from the durable copies
    ([peek_persisted]) -- callable from checking code at any point,
    including mid-crash. *)

val check_exn : fail:(string -> unit) -> t -> unit
(** Invariant checker for the explorer (and the random sweeps): per-slot
    agreement and validity over the observation logs, no
    committed-prefix regression against the watermark, and durability of
    every committed slot's decision.  Reads only Heap-registered state,
    so it is sound under [?dedup].  [fail] is called with a one-line
    diagnosis on the first violated property
    (e.g. {!Rcons_runtime.Explore.fail}). *)

val decided_value : t -> slot:int -> int option
(** The slot's decided value if any -- a volatile out-of-simulation peek
    of the chain register.  The service layer acknowledges an append
    with it once the slot is inside the committed prefix.

    @raise Invalid_argument on an out-of-range slot. *)

val recovery_steps : t -> int array
(** Per-process count of slots replayed from the chain during
    recoveries (a copy; meta-observation for the harness/bench). *)

val recoveries : t -> int array
(** Per-process count of body re-entries after a crash (a copy). *)

val history : t -> (int Rcons_history.Conditions.log_op, int) Rcons_history.History.t
(** The operation history the log records: one APPEND per (pid, slot)
    whose response may arrive after crashes, with [Persist] markers
    after the annotated variant's barriers.  Feed {!note_crash} from the
    adversary's crash hook to place crash markers. *)

val note_crash : t -> pid:int -> unit
(** Record a crash marker in the history (call from
    {!Rcons_runtime.Adversary.run}'s [on_crash]). *)

val verdict :
  committed_trace:int list -> t -> Rcons_history.Conditions.log_verdict
(** {!Rcons_history.Conditions.prefix_durability} of the recorded
    history; [committed_trace] is the {!committed} readout sampled by
    the harness (after every crash and at the end). *)
