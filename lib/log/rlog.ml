(* Recoverable replicated log over per-slot recoverable-consensus
   instances; see the interface for the architecture overview.

   The shared state is three layers, all in the simulated non-volatile
   heap:

   - [tc.(slot)]: one fresh Figure 2 team-consensus instance per slot
     (its recording object and proposal registers), deciding the slot's
     value;
   - [decided.(slot)]: the chain itself -- a register caching the slot's
     decision so recovery can replay it without re-running consensus;
   - [votes.(pid)]: the quorum counter (modeled on Wasp's QC module):
     process [pid]'s durably completed prefix length.  The committed
     prefix is the largest [li] such that a quorum of processes have a
     durable vote >= [li] (QCReached/QCMax), computed over the durable
     copies only -- volatile progress does not commit anything.

   Barrier discipline (the [annotated] variant): a slot's decision must
   be durable BEFORE the vote that advertises it.  Writing the decision
   uses a write + link-and-persist-read retry loop ([install_durable])
   rather than write + flush: under [Lossy] a concurrent writer can take
   the cache line and crash between our write and our flush, in which
   case the revert discards our volatile write with its own and our
   flush would persist the reverted [None] -- the same absorbed-write
   hazard [Team_consensus.apply_o_durable] retries against.  The vote is
   private to its process (no other process ever writes [votes.(pid)]),
   so a plain write + flush is enough there.  [vote_first] deliberately
   inverts the order -- vote flushed before the decision is durable --
   as a negative control: the explorer exhibits a committed slot whose
   decision a crash then un-persists. *)

open Rcons_runtime
module TC = Rcons_algo.Team_consensus
module Certificate = Rcons_check.Certificate
module History = Rcons_history.History
module Conditions = Rcons_history.Conditions

type t = {
  slots : int;
  size_a : int;
  size_b : int;
  n : int;
  quorum : int;
  annotated : bool;
  vote_first : bool;
  tc : int TC.t array;
  decided : int option Cell.t array;
  votes : int Cell.t array;
  (* Heap-registered meta-observations: the explorer's invariants read
     them, so two executions share a fingerprint only when these agree
     too (same contract as [Outputs]). *)
  obs : int option array array; (* obs.(pid).(slot): last value observed *)
  obs_conflict : bool ref;
  watermark : int ref; (* highest committed prefix the checker has seen *)
  obs_slot : Heap.slot option; (* fingerprint-cache slot of [obs] *)
  wm_slot : Heap.slot option; (* ... of [(obs_conflict, watermark)] *)
  (* Unregistered instrumentation, consumed only by the random harness
     and the bench (never by explorer invariants). *)
  history : (int Conditions.log_op, int) History.t;
  tags : int option array array;
  responded : bool array array;
  recovery_steps : int array;
  recoveries : int array;
  entered : bool array;
}

(* One proposal value per (team, slot): every member of a team proposes
   the same value for a slot, so the certificate's symmetry classes
   remain sound for the symmetry-reducing explorer. *)
let proposal_a slot = ((slot + 1) * 1000) + 111
let proposal_b slot = ((slot + 1) * 1000) + 222
let proposal t ~pid ~slot = if pid < t.size_a then proposal_a slot else proposal_b slot

let create ?(faithful = true) ?(annotated = false) ?(vote_first = false) ~slots cert =
  if slots < 1 then invalid_arg "Rlog.create: slots must be >= 1";
  let size_a, size_b = Certificate.recording_teams cert in
  let n = size_a + size_b in
  let tc = Array.init slots (fun _ -> TC.create ~faithful ~annotated cert) in
  let decided = Array.init slots (fun _ -> Cell.make None) in
  let votes = Array.init n (fun _ -> Cell.make 0) in
  let obs = Array.init n (fun _ -> Array.make slots None) in
  let obs_conflict = ref false in
  let watermark = ref 0 in
  (* [obs] is pid-indexed, so a symmetry snapshot relabels its rows,
     exactly like the [Outputs] log. *)
  let obs_slot =
    Heap.register_sym_c (fun perm ->
        match perm with
        | None -> Heap.digest obs
        | Some perm ->
            let a = Array.make n [||] in
            Array.iteri (fun i row -> a.(perm.(i)) <- row) obs;
            Heap.digest a)
  in
  (* The conflict flag and the checker's watermark are part of the state
     the invariants read; registering them keeps deduplication sound
     (the watermark is redundant with the durable votes on correct runs,
     so it does not grow the state space there). *)
  let wm_slot = Heap.register_c (fun () -> Heap.digest (!obs_conflict, !watermark)) in
  {
    slots;
    size_a;
    size_b;
    n;
    quorum = (n / 2) + 1;
    annotated;
    vote_first;
    tc;
    decided;
    votes;
    obs;
    obs_conflict;
    watermark;
    obs_slot;
    wm_slot;
    history = History.create ();
    tags = Array.init n (fun _ -> Array.make slots None);
    responded = Array.init n (fun _ -> Array.make slots false);
    recovery_steps = Array.make n 0;
    recoveries = Array.make n 0;
    entered = Array.make n false;
  }

let num_procs t = t.n
let num_slots t = t.slots
let teams t = (t.size_a, t.size_b)

(* --- instrumentation (meta-observations, not shared-memory steps) --- *)

(* Undo discipline: the meta-observations run in process bodies between
   steps, so the rollback feed re-executes them.  [observe] is
   idempotent under the feed (the fed value equals the restored one);
   the append-style helpers are guarded by their once-flags, which the
   journal restored, except [persist_marker] (unguarded by design: a
   durable operation may persist again after recovery) and the body's
   entry counters, which take an explicit feeding guard.  Every mutation
   journals its old value while recording, and mutations of
   heap-registered state re-dirty their cache slots. *)

let journal_history t =
  if Undo.recording () then begin
    let s = History.save t.history in
    Undo.log (fun () -> History.restore t.history s)
  end

let observe t pid slot v =
  if Undo.recording () then begin
    let old = t.obs.(pid).(slot) in
    let oldc = !(t.obs_conflict) in
    Undo.log (fun () ->
        t.obs.(pid).(slot) <- old;
        t.obs_conflict := oldc;
        Heap.touch t.obs_slot;
        Heap.touch t.wm_slot)
  end;
  (match t.obs.(pid).(slot) with
  | Some w when w <> v ->
      t.obs_conflict := true;
      Heap.touch t.wm_slot
  | _ -> ());
  t.obs.(pid).(slot) <- Some v;
  Heap.touch t.obs_slot

(* An APPEND interrupted by a crash and completed by recovery is ONE
   operation whose response arrives late, so the tag is allocated once
   per (pid, slot) and survives restarts. *)
let invoke_once t pid slot prop =
  match t.tags.(pid).(slot) with
  | Some _ -> ()
  | None ->
      journal_history t;
      if Undo.recording () then Undo.log (fun () -> t.tags.(pid).(slot) <- None);
      t.tags.(pid).(slot) <-
        Some (History.invoke t.history ~pid (Conditions.Append { slot; value = prop }))

let respond_once t pid slot v =
  if not t.responded.(pid).(slot) then (
    journal_history t;
    if Undo.recording () then Undo.log (fun () -> t.responded.(pid).(slot) <- false);
    (match t.tags.(pid).(slot) with
    | Some tag -> History.respond t.history ~pid ~tag v
    | None -> ());
    t.responded.(pid).(slot) <- true)

let persist_marker t pid slot =
  if not (Undo.feeding ()) then
    match t.tags.(pid).(slot) with
    | Some tag ->
        journal_history t;
        History.persist t.history ~pid ~tag
    | None -> ()

let note_crash t ~pid =
  journal_history t;
  History.crash t.history ~pid

(* --- the process body --- *)

(* Durably install [Some v]: write, then link-and-persist read until the
   durable copy actually holds a decision (see the header for why a
   plain write + flush is not enough under [Lossy]). *)
let rec install_durable cell v =
  Cell.write cell (Some v);
  match Cell.read_persist cell with Some w -> w | None -> install_durable cell v

let read_vote t pid =
  if t.annotated then Cell.read_persist t.votes.(pid) else Cell.read t.votes.(pid)

let read_decided t slot =
  if t.annotated then Cell.read_persist t.decided.(slot) else Cell.read t.decided.(slot)

let append t pid slot =
  let team, tslot =
    if pid < t.size_a then (Rcons_spec.Team.A, pid) else (Rcons_spec.Team.B, pid - t.size_a)
  in
  let prop = proposal t ~pid ~slot in
  invoke_once t pid slot prop;
  let v = t.tc.(slot).TC.decide team tslot prop in
  let write_decided () =
    if t.annotated then ignore (install_durable t.decided.(slot) v)
    else Cell.write t.decided.(slot) (Some v)
  in
  let write_vote () =
    Cell.write t.votes.(pid) (slot + 1);
    if t.annotated then Cell.flush t.votes.(pid)
  in
  if t.vote_first then (
    write_vote ();
    write_decided ())
  else (
    write_decided ();
    write_vote ());
  observe t pid slot v;
  respond_once t pid slot v;
  if t.annotated then persist_marker t pid slot

let body t pid () =
  (* Entry bookkeeping is not once-guarded, so the rollback feed (which
     re-runs the body prologue) must skip it explicitly. *)
  if not (Undo.feeding ()) then begin
    if Undo.recording () then begin
      let e = t.entered.(pid) and r = t.recoveries.(pid) in
      Undo.log (fun () ->
          t.entered.(pid) <- e;
          t.recoveries.(pid) <- r)
    end;
    if t.entered.(pid) then t.recoveries.(pid) <- t.recoveries.(pid) + 1
    else t.entered.(pid) <- true
  end;
  (* Recovery: my durable vote bounds the prefix I completed; replay
     those slots from the chain instead of re-running consensus.  A slot
     inside the prefix whose decision is unreadable (the [vote_first]
     bug, or a barrier-free run) falls through to a full re-append. *)
  let k = min (read_vote t pid) t.slots in
  for slot = 0 to t.slots - 1 do
    let replayed =
      slot < k
      &&
      match read_decided t slot with
      | Some v ->
          if not (Undo.feeding ()) then begin
            if Undo.recording () then begin
              let r = t.recovery_steps.(pid) in
              Undo.log (fun () -> t.recovery_steps.(pid) <- r)
            end;
            t.recovery_steps.(pid) <- t.recovery_steps.(pid) + 1
          end;
          observe t pid slot v;
          respond_once t pid slot v;
          if t.annotated then persist_marker t pid slot;
          true
      | None -> false
    in
    if not replayed then append t pid slot
  done

let instance ?faithful ?annotated ?vote_first ~slots cert =
  let t = create ?faithful ?annotated ?vote_first ~slots cert in
  (t, Sim.create ~n:t.n (body t))

(* --- checking --- *)

let committed t =
  let durable = Array.map Cell.peek_persisted t.votes in
  let reached li =
    Array.fold_left (fun c v -> if v >= li then c + 1 else c) 0 durable >= t.quorum
  in
  let rec go li = if li < t.slots && reached (li + 1) then go (li + 1) else li in
  go 0

let decided_value t ~slot =
  if slot < 0 || slot >= t.slots then invalid_arg "Rlog.decided_value: slot out of range";
  Cell.peek t.decided.(slot)

let recovery_steps t = Array.copy t.recovery_steps
let recoveries t = Array.copy t.recoveries
let history t = t.history

let check_exn ~fail t =
  if !(t.obs_conflict) then
    fail "log agreement violated: a process observed two different values for one slot";
  for slot = 0 to t.slots - 1 do
    let vals =
      Array.fold_left
        (fun acc row -> match row.(slot) with Some v when not (List.mem v acc) -> v :: acc | _ -> acc)
        [] t.obs
    in
    (match vals with
    | v :: w :: _ ->
        fail (Printf.sprintf "log agreement violated: slot %d observed as both %d and %d" slot w v)
    | _ -> ());
    List.iter
      (fun v ->
        if v <> proposal_a slot && v <> proposal_b slot then
          fail (Printf.sprintf "log validity violated: slot %d decided %d, not a proposal" slot v))
      vals
  done;
  let c = committed t in
  if c < !(t.watermark) then
    fail (Printf.sprintf "committed prefix regressed: %d after %d" c !(t.watermark));
  if c <> !(t.watermark) then begin
    (* Checker state is fingerprinted (see [create]), so it rolls back
       with the rest of the simulation. *)
    if Undo.recording () then begin
      let old = !(t.watermark) in
      Undo.log (fun () ->
          t.watermark := old;
          Heap.touch t.wm_slot)
    end;
    t.watermark := c;
    Heap.touch t.wm_slot
  end;
  for slot = 0 to c - 1 do
    if Cell.peek_persisted t.decided.(slot) = None then
      fail (Printf.sprintf "slot %d is committed but its decision is not durable" slot)
  done

let verdict ~committed_trace t = Conditions.prefix_durability ~committed_trace t.history
